"""The hybrid bridge: symbolic front end, explicit solver back end.

The symbolic tier answers *whether* and *where* CSC fails without
enumerating states, but the region/insertion solver
(:mod:`repro.core.search`, :mod:`repro.core.solver`) fundamentally works
on explicit state graphs.  ``symbolic_encode`` glues the two: it runs
census and conflict detection symbolically, and

* with no conflicts, stops — the specification already satisfies CSC
  and no state was ever enumerated (``mode="symbolic"``);
* with conflicts whose *conflict-reachable core* (every state on a
  trajectory through a conflict, :func:`repro.symbolic.csc.conflict_core`)
  fits the state budget, materializes exactly that core into an explicit
  :class:`~repro.stg.state_graph.StateGraph` — whose canonical
  integer/bitset :class:`~repro.core.indexed.IndexedStateGraph` the
  PR-3 pipeline then computes on — and lets :func:`repro.core.solver.solve_csc`
  finish the job (``mode="hybrid"``);
* otherwise reports a structured symbolic-only verdict: state count,
  USC/CSC pair counts, conflict-state and core sizes, witness cubes
  (``mode="symbolic-only"``).

Materialization is a breadth-first replay of the Petri-net token game
restricted to core members (membership is one BDD evaluation per
successor), visiting states in exactly the order of
:func:`repro.petri.reachability.build_reachability_graph` and carrying
binary codes along arcs.  When the core happens to be the whole
reachable set — the usual case for the strongly connected controllers of
the benchmark library — the materialized graph is identical, state
object for state object, to the one :func:`repro.stg.state_graph.build_state_graph`
produces, so the solver's results are byte-for-byte those of the
explicit pipeline (the differential suite asserts exactly that).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.bdd.bdd import Node
from repro.core.solver import EncodingResult, SolverSettings, solve_csc
from repro.obs import get_logger, span
from repro.petri.reachability import StateSpaceLimitExceeded
from repro.stg.state_graph import StateGraph
from repro.stg.stg import STG
from repro.symbolic.csc import (
    SymbolicConflictReport,
    detect_csc_conflicts,
    ensure_core,
)
from repro.symbolic.stategraph import SymbolicCensus, SymbolicStateGraph
from repro.ts.transition_system import TransitionSystem
from repro.utils.deadline import check_deadline

_log = get_logger("symbolic")

__all__ = [
    "SymbolicOutcome",
    "materialize_core",
    "symbolic_encode",
    "DEFAULT_STATE_BUDGET",
    "DEFAULT_CORE_BUDGET",
]

#: State-count budget under which ``engine="auto"`` still routes a
#: request through the explicit pipeline (used when the caller passes
#: ``max_states=None`` — the symbolic tier exists precisely because
#: "unbounded explicit" is not a thing for its workloads).
DEFAULT_STATE_BUDGET = 200000

#: Default bound on the conflict core the hybrid bridge will materialize
#: for the *insertion solver*.  Deliberately much smaller than the
#: census/exploration budget: enumerating a hundred thousand states is
#: cheap, but the Figure-4 insertion search on them is not — beyond
#: roughly this size the solve itself goes symbolic
#: (``mode="symbolic-insert"``, :mod:`repro.symbolic.insert`).
DEFAULT_CORE_BUDGET = 512

#: State ceiling for the fully symbolic insertion path.  The BDD-space
#: Figure-4 search never enumerates states, but its block evaluations
#: still scale with graph size; beyond this census the search is not a
#: benchmark-sized computation and a detection-only verdict is the
#: honest default answer.  Matches the canonical-enumeration limit of
#: :mod:`repro.symbolic.regions`, so every graph the solver accepts by
#: default is also one whose search order is pinned to the explicit
#: engine's.
DEFAULT_SYMBOLIC_SOLVE_BUDGET = 20000


def materialize_core(
    ssg: SymbolicStateGraph, core: Node, max_states: Optional[int] = None
) -> StateGraph:
    """Materialize the subgraph induced by ``core`` as an explicit graph.

    Breadth-first token-game replay from the initial state, keeping only
    successors inside ``core``; arcs between kept states are labelled
    with base signal edges and binary codes are carried along arcs from
    the inferred initial values.  With ``core`` equal to the full
    reachable set this reproduces
    :func:`~repro.stg.state_graph.build_state_graph` exactly (same
    :class:`~repro.petri.net.Marking` state objects, same insertion
    order, same encoding).
    """
    stg = ssg.stg
    net = stg.net
    values = ssg.infer_initial_values()
    initial = net.initial_marking
    initial_code = tuple(values[signal] for signal in stg.signals)
    if not ssg.contains(core, initial, initial_code):
        raise ValueError(
            "the materialization core does not contain the initial state; "
            "close it backward first (conflict_core does)"
        )
    signal_position = {signal: i for i, signal in enumerate(stg.signals)}

    ts = TransitionSystem(name=f"rg({net.name})")
    ts.set_initial(initial)
    encoding = {initial: initial_code}
    frontier = deque([initial])
    while frontier:
        check_deadline()
        marking = frontier.popleft()
        code = encoding[marking]
        for transition in net.enabled_transitions(marking):
            label = stg.label_of(transition)
            assert label is not None  # dummies rejected by SymbolicStateGraph
            edge = label.base()
            successor = net.fire(marking, transition)
            successor_code = list(code)
            successor_code[signal_position[edge.signal]] = edge.value_after()
            successor_code = tuple(successor_code)
            if not ssg.contains(core, successor, successor_code):
                continue
            ts.add_transition(marking, edge, successor)
            if successor not in encoding:
                encoding[successor] = successor_code
                if max_states is not None and len(encoding) > max_states:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_states} core states in {net.name}"
                    )
                frontier.append(successor)
    return StateGraph(
        ts=ts,
        signals=stg.signals,
        signal_types={signal: stg.signal_types[signal] for signal in stg.signals},
        encoding=encoding,
        name=stg.name,
    )


@dataclass
class SymbolicOutcome:
    """Everything produced by one :func:`symbolic_encode` run."""

    stg: STG
    mode: str  # "symbolic" | "hybrid" | "symbolic-insert" | "symbolic-only"
    census: SymbolicCensus
    report: SymbolicConflictReport
    #: hybrid mode: an :class:`EncodingResult`; symbolic-insert mode: a
    #: :class:`~repro.symbolic.insert.SymbolicEncodingResult` (same
    #: fingerprint/summary surface); otherwise ``None``.
    result: Optional[object] = None
    materialized_states: Optional[int] = None
    total_seconds: float = 0.0

    @property
    def solved(self) -> bool:
        if self.result is not None:
            return self.result.solved
        return self.report.csc_holds

    @property
    def conflicts_remaining(self) -> int:
        if self.result is not None:
            return self.result.conflicts_remaining
        return self.report.csc_pairs

    @property
    def inserted_signals(self) -> list:
        return self.result.inserted_signals if self.result is not None else []

    def summary(self) -> Dict[str, object]:
        """Flat JSON-serialisable summary (the symbolic twin of
        :meth:`repro.core.solver.EncodingResult.summary`); deterministic
        apart from ``cpu_seconds``."""
        if self.result is not None:
            flat = self.result.summary()
        else:
            flat = {
                "name": self.census.name,
                "states_before": self.census.states,
                "states_after": self.census.states,
                "signals_before": self.census.signals,
                "signals_after": self.census.signals,
                "inserted": 0,
                "solved": self.solved,
                "conflicts_remaining": self.report.csc_pairs,
                "insertions": [],
                "cpu_seconds": round(self.total_seconds, 3),
            }
        flat["engine_mode"] = self.mode
        flat["symbolic_states"] = self.census.states
        flat["usc_pairs"] = self.report.usc_pairs
        flat["csc_pairs"] = self.report.csc_pairs
        flat["csc_holds"] = self.report.csc_holds
        flat["conflict_states"] = self.report.conflict_state_count
        flat["core_states"] = self.report.core_states
        flat["witnesses"] = list(self.report.witnesses)
        return flat

    def table_row(self) -> Dict[str, object]:
        """The benchmark-table row (twin of
        :meth:`repro.api.EncodingReport.table_row`)."""
        stats = self.stg.stats()
        return {
            "benchmark": self.stg.name,
            "places": stats["places"],
            "transitions": stats["transitions"],
            "signals": stats["signals"],
            "states": self.census.states,
            "inserted": self.result.num_inserted if self.result is not None else 0,
            "solved": self.solved,
            "cpu": round(self.total_seconds, 2),
            "mode": self.mode,
        }


def symbolic_encode(
    stg: STG,
    settings: Optional[SolverSettings] = None,
    max_states: Optional[int] = DEFAULT_STATE_BUDGET,
    witness_limit: int = 4,
    hybrid: bool = True,
    core_budget: Optional[int] = None,
    ssg: Optional[SymbolicStateGraph] = None,
) -> SymbolicOutcome:
    """Run the CSC pipeline with a symbolic front half (module docstring).

    Parameters
    ----------
    stg:
        The input specification (safe, consistent, no dummies).
    settings:
        Solver settings for the hybrid back end; ``max_signals == 0``
        disables solving just as it does explicitly, leaving a
        detection-only verdict.
    max_states:
        Hard cap on any explicit enumeration (a safety bound, like the
        explicit pipeline's ``max_states``); ``None`` falls back to
        :data:`DEFAULT_STATE_BUDGET` — the symbolic tier never
        materializes unboundedly.
    witness_limit:
        Conflict witness cubes to decode into the verdict.
    hybrid:
        Allow bridging to the explicit solver at all; ``False`` forces a
        detection-only run regardless of core size.
    core_budget:
        Bound on the conflict core the bridge materializes for the
        explicit insertion solver; ``None`` falls back to
        ``settings.core_budget`` and then :data:`DEFAULT_CORE_BUDGET`
        (solver-sized, far below ``max_states``).  A larger core takes
        the fully symbolic insertion path (``mode="symbolic-insert"``,
        :mod:`repro.symbolic.insert`) instead.
    ssg:
        A pre-built (possibly pre-explored) symbolic graph to reuse —
        the ``engine="auto"`` path builds one for the census and hands
        it over instead of re-exploring.
    """
    settings = settings or SolverSettings()
    hard_cap = max_states if max_states is not None else DEFAULT_STATE_BUDGET
    if core_budget is None:
        core_budget = settings.core_budget
    requested = core_budget if core_budget is not None else DEFAULT_CORE_BUDGET
    solver_budget = min(requested, hard_cap)
    if solver_budget < requested:
        # Surface the clamp: the caller asked for a bigger core than the
        # explicit-enumeration safety bound allows.
        _log.warning(
            "core_budget_clamped",
            name=stg.name,
            requested=requested,
            max_states=hard_cap,
            effective=solver_budget,
        )
    started = time.perf_counter()
    with span("symbolic.census", name=stg.name):
        if ssg is None:
            ssg = SymbolicStateGraph(stg)
        census = ssg.census()
    with span("symbolic.detect", name=stg.name):
        report = detect_csc_conflicts(ssg, witness_limit=witness_limit)

    mode = "symbolic"
    result: Optional[EncodingResult] = None
    materialized: Optional[int] = None
    # The core is computed on *every* path — detection-only runs
    # included — so the verdict schema is stable: ``core_states`` is
    # always an integer (0 when CSC already holds), never null.
    with span("symbolic.core", name=stg.name):
        core = ensure_core(ssg, report)
    if not report.csc_holds:
        mode = "symbolic-only"
        if hybrid and settings.max_signals > 0:
            if report.core_states <= solver_budget:
                with span("symbolic.materialize", name=stg.name):
                    sg = materialize_core(ssg, core, max_states=solver_budget)
                materialized = sg.num_states
                with span("symbolic.solve", name=stg.name):
                    result = solve_csc(sg, settings)
                mode = "hybrid"
            elif census.states <= DEFAULT_SYMBOLIC_SOLVE_BUDGET:
                # Core too large to hand to the explicit solver: run the
                # whole Figure-4 insertion search in BDD space instead.
                from repro.symbolic.insert import solve_csc_symbolic

                with span("symbolic.insert", name=stg.name):
                    result = solve_csc_symbolic(ssg, settings)
                mode = "symbolic-insert"
            else:
                _log.warning(
                    "symbolic_insert_skipped",
                    name=stg.name,
                    states=census.states,
                    budget=DEFAULT_SYMBOLIC_SOLVE_BUDGET,
                )
    return SymbolicOutcome(
        stg=stg,
        mode=mode,
        census=census,
        report=report,
        result=result,
        materialized_states=materialized,
        total_seconds=time.perf_counter() - started,
    )
