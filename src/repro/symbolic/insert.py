"""Fully symbolic CSC solving: signal insertion in BDD space (tentpole).

The hybrid bridge materializes the conflict-reachable core into the
explicit solver when it fits ``core_budget``; this module is the path
for everything beyond that: the complete Figure-4 pipeline — bricks,
block ranking, SIP validation, the insertion itself and the expanded
graph — runs on BDD state sets (:mod:`repro.symbolic.regions`), so no
step ever enumerates the current graph's states.

The three pieces, mirroring their explicit twins verdict for verdict:

* :func:`insert_signal_symbolic` — the twin of
  :func:`repro.core.insertion.insert_signal`: each transition of the
  parent is *replayed* at the x-values the I-partition crossing table
  allows, expressed as one derived transition piece whose enabling is
  ``(en0 ∧ ¬x) ∨ (en1 ∧ x)``; the expanded graph lives in a **fresh BDD
  manager** with one extra variable pair, parent formulas are copied
  across managers by structural transfer (variable indexes are
  preserved, so the copy is order-independent);
* :func:`check_insertion_symbolic` — the twin of
  :func:`repro.core.sip.check_insertion`: the same verdict sequence
  (degenerate partition, input delays, illegal crossings, determinism,
  commutativity, persistency of previously persistent events and of the
  new signal), each property phrased as an emptiness test of a
  violation set instead of a scan over states;
* :func:`find_insertion_plan_symbolic` / :func:`solve_csc_symbolic` —
  the twins of the Figure-4 frontier search and of
  :func:`repro.core.solver.solve_csc`: identical seeding, ranking
  (``(cost, size, seq)``), growth, greedy merge, validation order and
  progress/budget rules, with blocks as BDD nodes and all sizes via
  ``sat_count``.

On enumerable graphs the whole pipeline is pinned byte-identical to the
explicit engine (same inserted signals, same
:meth:`~repro.core.solver.EncodingResult.fingerprint` content) by the
conformance suite; the explicit event orders the search depends on are
reproduced by the view's :class:`~repro.symbolic.regions.ExplicitOrderLedger`.

Two deliberate divergences from the explicit engine, both logged:
``enlarge_concurrency`` is not offered symbolically (no library setting
uses it), and the cost model never samples the conflict relation down to
``max_conflict_pairs`` — the BDD relation is the full set at any size,
which can only *improve* cost fidelity on heavily conflicting graphs.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.bdd.bdd import BDD, FALSE, Node, TRUE
from repro.core.cost import Cost
from repro.core.search import SearchSettings, _canonical_rank
from repro.core.solver import InsertionRecord, SolverSettings
from repro.obs import emit_progress, get_logger, span
from repro.stg.signals import SignalEdge
from repro.symbolic.regions import (
    ConflictContext,
    ExplicitOrderLedger,
    SymbolicBlockEvaluation,
    SymbolicGraphView,
    SymbolicIPartition,
    SymbolicPiece,
    brick_adjacency_symbolic,
    compute_bricks_symbolic,
    conflict_context,
    delayed_edges_symbolic,
    evaluate_block_symbolic,
)
from repro.symbolic.stategraph import SymbolicStateGraph
from repro.utils.deadline import check_deadline, poll_deadline
from repro.utils.timing import Stopwatch

_log = get_logger("symbolic")

__all__ = [
    "SymbolicEncodingResult",
    "SymbolicIllegalInsertionError",
    "SymbolicInsertionCheck",
    "SymbolicInsertionPlan",
    "check_insertion_symbolic",
    "find_insertion_plan_symbolic",
    "insert_signal_symbolic",
    "persistent_edges_symbolic",
    "solve_csc_symbolic",
    "transfer",
]


class SymbolicIllegalInsertionError(ValueError):
    """A reachable transition crosses the I-partition illegally (twin of
    :class:`repro.core.insertion.IllegalInsertionError`)."""


def transfer(src: BDD, dst: BDD, node: Node, memo: Dict[Node, Node]) -> Node:
    """Copy a function from one BDD manager into another.

    Variables are matched by *index*, which both managers interpret
    identically regardless of their current orders; complement edges are
    preserved by memoizing on the positive node only.
    """
    if node == TRUE or node == FALSE:
        return node
    negated = node < 0
    key = -node if negated else node
    result = memo.get(key)
    if result is None:
        result = dst.ite(
            dst.var(src.level(key)),
            transfer(src, dst, src.high(key), memo),
            transfer(src, dst, src.low(key), memo),
        )
        memo[key] = result
    return -result if negated else result


# ----------------------------------------------------------------------
# symbolic signal insertion (twin of core.insertion.insert_signal)
# ----------------------------------------------------------------------
def insert_signal_symbolic(
    view: SymbolicGraphView, partition: SymbolicIPartition, signal: str
) -> SymbolicGraphView:
    """Insert ``signal`` according to ``partition``, fully in BDD space.

    Every state of the result is conceptually a pair
    ``(original_state, x_value)``; concretely the expanded graph gets a
    fresh manager with one extra interleaved variable pair for ``x`` and
    one derived piece per parent piece.  A parent piece ``t`` replays at
    ``x = 0`` exactly from the states the crossing table maps to value 0
    — sources on the zero side whose ``t``-successor stays on the zero
    side, plus ``S-`` sources ``t`` keeps in ``S-`` or returns to the
    zero side — and symmetrically at ``x = 1``; the two cases become the
    ``¬x`` / ``x`` halves of the derived enabling.  Illegal crossings of
    *reachable* transitions raise before anything is built, like the
    explicit replay does (unreachable sources may leak a spurious
    enabling into a derived piece, but their child states are
    unreachable too, so the expanded graph is unaffected).
    """
    if signal in view.signals:
        raise ValueError(f"signal {signal!r} already exists in the state graph")
    bdd = view.bdd
    zero_side = partition.zero_side(bdd)
    one_side = partition.one_side(bdd)

    replays: List[Tuple[Node, Node]] = []
    for piece in view.pieces:
        index = piece.index
        pre_zero = view.pre_of(index, zero_side)
        pre_one = view.pre_of(index, one_side)
        pre_s0 = view.pre_of(index, partition.s0)
        pre_s1 = view.pre_of(index, partition.s1)
        illegal = bdd.disjoin(
            [
                bdd.apply_and(partition.s0, pre_one),
                bdd.apply_and(partition.splus, pre_s0),
                bdd.apply_and(partition.s1, pre_zero),
                bdd.apply_and(partition.sminus, pre_s1),
            ]
        )
        witness = bdd.apply_and(
            bdd.apply_and(view.reached, piece.enabling), illegal
        )
        if witness != bdd.false:
            raise SymbolicIllegalInsertionError(
                f"transition {piece.edge} crosses the I-partition illegally"
            )
        # value 0: Z -> Z plus S- -> (Z or S-); value 1: O -> O plus S+ -> (O or S+)
        en0 = bdd.apply_and(
            piece.enabling,
            bdd.apply_or(
                bdd.apply_and(zero_side, pre_zero),
                bdd.apply_and(
                    partition.sminus,
                    bdd.apply_or(pre_zero, view.pre_of(index, partition.sminus)),
                ),
            ),
        )
        en1 = bdd.apply_and(
            piece.enabling,
            bdd.apply_or(
                bdd.apply_and(one_side, pre_one),
                bdd.apply_and(
                    partition.splus,
                    bdd.apply_or(pre_one, view.pre_of(index, partition.splus)),
                ),
            ),
        )
        replays.append((en0, en1))

    num_vars = view.num_state_vars + 1
    child_bdd = BDD(2 * num_vars)
    needed_recursion = 8 * child_bdd.num_vars + 1000
    if sys.getrecursionlimit() < needed_recursion:
        sys.setrecursionlimit(needed_recursion)
    x_level = 2 * view.num_state_vars
    x_var = child_bdd.var(x_level)
    not_x = child_bdd.apply_not(x_var)
    memo: Dict[Node, Node] = {}

    pieces: List[SymbolicPiece] = []
    for piece, (en0, en1) in zip(view.pieces, replays):
        enabling = child_bdd.apply_or(
            child_bdd.apply_and(transfer(bdd, child_bdd, en0, memo), not_x),
            child_bdd.apply_and(transfer(bdd, child_bdd, en1, memo), x_var),
        )
        pieces.append(
            SymbolicPiece(
                name=piece.name,
                edge=piece.edge,
                enabling=enabling,
                changed_levels=list(piece.changed_levels),
                after=transfer(bdd, child_bdd, piece.after, memo),
                after_values=dict(piece.after_values),
            )
        )
    splus_child = transfer(bdd, child_bdd, partition.splus, memo)
    sminus_child = transfer(bdd, child_bdd, partition.sminus, memo)
    rise = SignalEdge.rise(signal)
    fall = SignalEdge.fall(signal)
    pieces.append(
        SymbolicPiece(
            name=f"{signal}+",
            edge=rise,
            enabling=child_bdd.apply_and(splus_child, not_x),
            changed_levels=[x_level],
            after=x_var,
            after_values={x_level: 1},
        )
    )
    pieces.append(
        SymbolicPiece(
            name=f"{signal}-",
            edge=fall,
            enabling=child_bdd.apply_and(sminus_child, x_var),
            changed_levels=[x_level],
            after=child_bdd.nvar(x_level),
            after_values={x_level: 0},
        )
    )

    initial_value = 0 if bdd.apply_and(view.initial, zero_side) != bdd.false else 1
    initial = child_bdd.apply_and(
        transfer(bdd, child_bdd, view.initial, memo),
        x_var if initial_value else not_x,
    )

    parent_decode = view._decode
    decode = None
    if parent_decode is not None:

        def decode(assignment: Dict[int, int], _decode=parent_decode):
            parent_assignment = {
                level: value for level, value in assignment.items() if level != x_level
            }
            return (_decode(parent_assignment), assignment[x_level])

    child = SymbolicGraphView(
        bdd=child_bdd,
        name=f"{view.name}+{signal}",
        signals=view.signals + [signal],
        signal_levels={**view.signal_levels, signal: x_level},
        input_signals=view.input_signals,
        pieces=pieces,
        num_state_vars=num_vars,
        initial=initial,
        decode=decode,
        ledger=None,
        ledger_mode="fixed",
    )
    parent_ledger = view.ledger
    if parent_ledger is not None:
        child._ledger = _child_ledger(
            view, parent_ledger, partition, child, rise, fall, initial_value
        )
    return child


def _child_ledger(
    view: SymbolicGraphView,
    parent: ExplicitOrderLedger,
    partition: SymbolicIPartition,
    child: SymbolicGraphView,
    rise: SignalEdge,
    fall: SignalEdge,
    initial_value: int,
) -> ExplicitOrderLedger:
    """Reconstruct the explicit engine's insertion orders for the
    expanded graph.

    Mirrors ``insert_signal``'s ``TransitionSystem`` bookkeeping: replay
    arcs in parent ``transitions()`` order at the crossing-table values,
    then the rise/fall arcs, then ``restrict_to_reachable`` (which keeps
    state order and rebuilds event first-occurrence order over the
    surviving arcs).  The explicit rise/fall loops iterate Python sets
    whose order is unobservable; here the border states are visited in
    parent state order — any case where that changed an *event* order
    would make the explicit engine itself hash-order dependent.
    """
    bdd = view.bdd
    vector = [0] * bdd.num_vars
    levels = view.unprimed_levels

    def classify(key: Tuple[int, ...]) -> str:
        for level, value in zip(levels, key):
            vector[level] = value
        if bdd.evaluate(partition.s0, vector):
            return "s0"
        if bdd.evaluate(partition.splus, vector):
            return "splus"
        if bdd.evaluate(partition.s1, vector):
            return "s1"
        return "sminus"

    classes = {key: classify(key) for key in parent.states}
    # the crossing table of core.insertion._target_values
    target_values = {
        ("s0", "s0"): (0,),
        ("s0", "splus"): (0,),
        ("splus", "splus"): (0, 1),
        ("splus", "s1"): (1,),
        ("splus", "sminus"): (1,),
        ("s1", "s1"): (1,),
        ("s1", "sminus"): (1,),
        ("sminus", "sminus"): (0, 1),
        ("sminus", "s0"): (0,),
        ("sminus", "splus"): (0,),
    }

    states: List[Tuple[int, ...]] = []
    outgoing: Dict[Tuple[int, ...], List[Tuple[SignalEdge, Tuple[int, ...]]]] = {}
    events: Dict[SignalEdge, None] = {}
    seen_arcs: Set[Tuple[Tuple[int, ...], SignalEdge, Tuple[int, ...]]] = set()

    def add_arc(source, edge, target) -> None:
        triple = (source, edge, target)
        if triple in seen_arcs:
            return
        seen_arcs.add(triple)
        for state in (source, target):
            if state not in outgoing:
                outgoing[state] = []
                states.append(state)
        events.setdefault(edge, None)
        outgoing[source].append((edge, target))

    for source, edge, target in parent.transitions():
        for value in target_values[(classes[source], classes[target])]:
            add_arc(source + (value,), edge, target + (value,))
    for key in parent.states:
        if classes[key] == "splus":
            add_arc(key + (0,), rise, key + (1,))
    for key in parent.states:
        if classes[key] == "sminus":
            add_arc(key + (1,), fall, key + (0,))

    initial_key = next(iter(parent.states)) + (initial_value,)
    if initial_key not in outgoing:
        outgoing[initial_key] = []
        states.append(initial_key)

    # restrict_to_reachable: membership from the child's reached set
    child_vector = [0] * child.bdd.num_vars
    reached = child.reached

    def is_reachable(key: Tuple[int, ...]) -> bool:
        for level, value in zip(child.unprimed_levels, key):
            child_vector[level] = value
        return bool(child.bdd.evaluate(reached, child_vector))

    keep = {key for key in states if is_reachable(key)}
    kept_states = [key for key in states if key in keep]
    kept_outgoing = {key: [] for key in kept_states}
    kept_events: Dict[SignalEdge, None] = {}
    for source in states:
        for edge, target in outgoing[source]:
            if source in keep and target in keep:
                kept_events.setdefault(edge, None)
                kept_outgoing[source].append((edge, target))
    return ExplicitOrderLedger(kept_states, kept_outgoing, list(kept_events))


# ----------------------------------------------------------------------
# symbolic SIP check (twin of core.sip.check_insertion)
# ----------------------------------------------------------------------
def persistent_edges_symbolic(view: SymbolicGraphView) -> Set[SignalEdge]:
    """Events persistent in ``view`` (twin of the ``persistent_before``
    set of the solver): ``e`` is persistent iff no reachable state
    enables both ``e`` and another event whose firing disables ``e``."""
    bdd = view.bdd
    result: Set[SignalEdge] = set()
    for edge in view.base_edges():
        enabled = view.enabled_predicate(edge)
        sources = bdd.apply_and(view.reached, enabled)
        persistent = True
        for piece in view.pieces:
            if piece.edge == edge:
                continue
            disabled_after = bdd.apply_not(view.pre_of(piece.index, enabled))
            violation = bdd.apply_and(
                bdd.apply_and(sources, piece.enabling), disabled_after
            )
            if violation != bdd.false:
                persistent = False
                break
        if persistent:
            result.add(edge)
    return result


def _edge_present(view: SymbolicGraphView, edge: SignalEdge) -> bool:
    """Whether any reachable transition of ``edge`` exists (the twin of
    ``event in new_sg.ts.events`` on the reachability-restricted TS)."""
    return (
        view.bdd.apply_and(view.reached, view.enabled_predicate(edge))
        != view.bdd.false
    )


def _result_cube(
    bdd: BDD,
    finals: Sequence[Tuple[Dict[int, int], ...]],
) -> Node:
    """Equality of two composed firing outcomes as a condition on the
    start state.

    Each element of ``finals`` is a pair of assignment chains: the final
    value of level ``l`` is the first chain entry containing ``l``, or
    the start state's own value.  Constant-vs-constant disagreement makes
    the outcomes unconditionally different (``FALSE``); constant-vs-pass-
    through contributes the literal ``l == constant``.
    """
    (chain_a, chain_b) = finals

    def final_value(chain: Tuple[Dict[int, int], ...], level: int) -> Optional[int]:
        for values in chain:
            if level in values:
                return values[level]
        return None

    levels: Set[int] = set()
    for chain in finals:
        for values in chain:
            levels.update(values)
    condition = bdd.true
    for level in sorted(levels, reverse=True):
        value_a = final_value(chain_a, level)
        value_b = final_value(chain_b, level)
        if value_a is not None and value_b is not None:
            if value_a != value_b:
                return bdd.false
        elif value_a is not None:
            condition = bdd.apply_and(
                condition, bdd.var(level) if value_a else bdd.nvar(level)
            )
        elif value_b is not None:
            condition = bdd.apply_and(
                condition, bdd.var(level) if value_b else bdd.nvar(level)
            )
    return condition


def _is_deterministic(view: SymbolicGraphView) -> bool:
    """No reachable state fires one event towards two different states."""
    bdd = view.bdd
    for edge in view.base_edges():
        pieces = view.pieces_of(edge)
        for i, first in enumerate(pieces):
            for second in pieces[i + 1 :]:
                same_result = _result_cube(
                    bdd, ((first.after_values,), (second.after_values,))
                )
                violation = bdd.apply_and(
                    bdd.apply_and(view.reached, first.enabling),
                    bdd.apply_and(second.enabling, bdd.apply_not(same_result)),
                )
                if violation != bdd.false:
                    return False
    return True


def _is_commutative(view: SymbolicGraphView) -> bool:
    """Diamonds commute: when two events fire in both orders from a
    reachable state, both orders reach the same state."""
    bdd = view.bdd
    for p in view.pieces:
        poll_deadline()
        for q in view.pieces:
            if p.index >= q.index or p.edge == q.edge:
                continue
            both = bdd.apply_and(
                bdd.apply_and(view.reached, p.enabling), q.enabling
            )
            if both == bdd.false:
                continue
            for q2 in view.pieces_of(q.edge):
                q2_after_p = view.pre_of(p.index, q2.enabling)
                base = bdd.apply_and(both, q2_after_p)
                if base == bdd.false:
                    continue
                for p2 in view.pieces_of(p.edge):
                    p2_after_q = view.pre_of(q.index, p2.enabling)
                    same_result = _result_cube(
                        bdd,
                        (
                            (q2.after_values, p.after_values),
                            (p2.after_values, q.after_values),
                        ),
                    )
                    violation = bdd.apply_and(
                        bdd.apply_and(base, p2_after_q),
                        bdd.apply_not(same_result),
                    )
                    if violation != bdd.false:
                        return False
    return True


def _is_edge_persistent(view: SymbolicGraphView, edge: SignalEdge) -> bool:
    """Twin of ``is_event_persistent`` on the expanded graph."""
    bdd = view.bdd
    enabled = view.enabled_predicate(edge)
    sources = bdd.apply_and(view.reached, enabled)
    if sources == bdd.false:
        return True
    for piece in view.pieces:
        if piece.edge == edge:
            continue
        violation = bdd.apply_and(
            bdd.apply_and(sources, piece.enabling),
            bdd.apply_not(view.pre_of(piece.index, enabled)),
        )
        if violation != bdd.false:
            return False
    return True


@dataclass
class SymbolicInsertionCheck:
    """Outcome of the symbolic SIP validity check (twin of
    :class:`repro.core.sip.InsertionCheck`)."""

    ok: bool
    reasons: List[str] = field(default_factory=list)
    new_view: Optional[SymbolicGraphView] = None
    delayed: FrozenSet[SignalEdge] = frozenset()


def check_insertion_symbolic(
    view: SymbolicGraphView,
    partition: SymbolicIPartition,
    signal: str = "__csc_probe__",
    persistent_before: Optional[Set[SignalEdge]] = None,
    check_commutativity: bool = True,
    allow_input_delay: bool = False,
) -> SymbolicInsertionCheck:
    """Perform the insertion symbolically and verify it preserves speed
    independence — the same verdict sequence as the explicit check."""
    bdd = view.bdd
    reasons: List[str] = []

    if partition.splus == bdd.false or partition.sminus == bdd.false:
        reasons.append(
            "the inserted signal would never switch (empty ER(x+) or ER(x-))"
        )
        return SymbolicInsertionCheck(ok=False, reasons=reasons)

    delayed = frozenset(delayed_edges_symbolic(view, partition))
    if not allow_input_delay:
        for edge in delayed:
            if view.is_input_edge(edge):
                reasons.append(
                    f"input event {edge} would be delayed by the new signal"
                )
    if reasons:
        return SymbolicInsertionCheck(ok=False, reasons=reasons, delayed=delayed)

    try:
        child = insert_signal_symbolic(view, partition, signal)
    except SymbolicIllegalInsertionError as error:
        return SymbolicInsertionCheck(
            ok=False, reasons=[str(error)], delayed=delayed
        )

    if not _is_deterministic(child):
        reasons.append("insertion breaks determinism")
    if check_commutativity and not _is_commutative(child):
        reasons.append("insertion breaks commutativity")

    if persistent_before is None:
        persistent_before = persistent_edges_symbolic(view)
    for edge in persistent_before:
        if view.is_input_edge(edge):
            # Input persistency is an assumption about the environment,
            # not a property of the circuit (see the explicit check).
            continue
        if _edge_present(child, edge) and not _is_edge_persistent(child, edge):
            reasons.append(f"event {edge} loses persistency")

    for edge in (SignalEdge.rise(signal), SignalEdge.fall(signal)):
        if _edge_present(child, edge) and not _is_edge_persistent(child, edge):
            reasons.append(f"inserted transition {edge} is not persistent")

    return SymbolicInsertionCheck(
        ok=not reasons, reasons=reasons, new_view=child, delayed=delayed
    )


# ----------------------------------------------------------------------
# Figure-4 search (twin of core.search.find_insertion_plan)
# ----------------------------------------------------------------------
@dataclass
class SymbolicInsertionPlan:
    """A validated symbolic insertion (twin of
    :class:`repro.core.search.InsertionPlan`); carries the expanded view
    and, when the progress rule already computed it, the expanded
    graph's conflict relation for the solver to reuse."""

    signal: str
    block: Node
    partition: SymbolicIPartition
    cost: Cost
    check: SymbolicInsertionCheck
    conflicts_before: int
    candidates_examined: int
    child_conflicts: Optional[ConflictContext] = None

    @property
    def new_view(self) -> SymbolicGraphView:
        assert self.check.new_view is not None
        return self.check.new_view


class _SymbolicCandidate:
    """Node-space twin of ``_BlockCandidate`` (same ranking contract)."""

    __slots__ = ("states", "size", "brick_indices", "evaluation", "seq")

    def __init__(
        self,
        states: Node,
        size: int,
        brick_indices: FrozenSet[int],
        evaluation: SymbolicBlockEvaluation,
        seq: int = 0,
    ) -> None:
        self.states = states
        self.size = size
        self.brick_indices = brick_indices
        self.evaluation = evaluation
        self.seq = seq

    @property
    def cost(self) -> Cost:
        return self.evaluation.cost


def _rank(candidates: Sequence[_SymbolicCandidate]) -> List[_SymbolicCandidate]:
    return _canonical_rank(candidates, lambda c: c.size)


def find_insertion_plan_symbolic(
    view: SymbolicGraphView,
    signal: str,
    settings: Optional[SearchSettings] = None,
    conflicts: Optional[ConflictContext] = None,
) -> Optional[SymbolicInsertionPlan]:
    """Find the best valid insertion of one new state signal, in BDD
    space — the same frontier search, ranking, merge and validation
    order as the explicit :func:`~repro.core.search.find_insertion_plan`."""
    settings = settings or SearchSettings()
    if conflicts is None:
        conflicts = conflict_context(view)
    if conflicts.pairs == 0:
        return None
    full_conflict_count = conflicts.pairs
    if full_conflict_count > settings.max_conflict_pairs:
        _log.warning(
            "symbolic_cost_uses_full_conflict_relation",
            name=view.name,
            pairs=full_conflict_count,
            explicit_sample=settings.max_conflict_pairs,
        )
    if settings.enlarge_concurrency:
        _log.warning(
            "enlarge_concurrency_not_supported_symbolically", name=view.name
        )

    bricks = compute_bricks_symbolic(
        view, mode=settings.brick_mode, max_explored=settings.region_budget
    )
    if not bricks:
        return None
    adjacency = brick_adjacency_symbolic(view, bricks)
    bdd = view.bdd

    evaluation_memo: Dict[Node, Optional[SymbolicBlockEvaluation]] = {}

    def evaluate(block: Node) -> Optional[SymbolicBlockEvaluation]:
        cached = evaluation_memo.get(block, _MISSING)
        if cached is not _MISSING:
            return cached
        result = evaluate_block_symbolic(
            view, block, conflicts, allow_input_delay=settings.allow_input_delay
        )
        evaluation_memo[block] = result
        return result

    # --- seed: every brick is a candidate block -------------------------
    seen_blocks: Set[Node] = set()
    good: List[_SymbolicCandidate] = []
    next_seq = itertools.count()
    for index, brick in enumerate(bricks):
        evaluation = evaluate(brick)
        if evaluation is None or evaluation.block in seen_blocks:
            continue
        seen_blocks.add(evaluation.block)
        good.append(
            _SymbolicCandidate(
                evaluation.block,
                view.size_of(evaluation.block),
                frozenset([index]),
                evaluation,
                next(next_seq),
            )
        )
    if not good:
        return None

    frontier = _rank(good)[: settings.frontier_width]

    # --- Figure 4: grow blocks with adjacent bricks ---------------------
    for _iteration in range(settings.max_search_iterations):
        new_frontier: List[_SymbolicCandidate] = []
        for candidate in frontier:
            check_deadline()
            neighbour_indices: Set[int] = set()
            for brick_index in candidate.brick_indices:
                neighbour_indices.update(adjacency[brick_index])
            neighbour_indices -= set(candidate.brick_indices)
            for brick_index in sorted(neighbour_indices):
                grown_states = bdd.apply_or(candidate.states, bricks[brick_index])
                if (
                    grown_states in seen_blocks
                    or view.size_of(grown_states) >= view.num_states
                ):
                    continue
                evaluation = evaluate(grown_states)
                seen_blocks.add(grown_states)
                if evaluation is None:
                    continue
                if evaluation.cost < candidate.cost:
                    grown = _SymbolicCandidate(
                        grown_states,
                        view.size_of(grown_states),
                        candidate.brick_indices | {brick_index},
                        evaluation,
                        next(next_seq),
                    )
                    good.append(grown)
                    new_frontier.append(grown)
        if not new_frontier:
            break
        frontier = _rank(new_frontier)[: settings.frontier_width]

    ranked = _rank(good)

    # --- merge the best disconnected blocks ------------------------------
    merged = _greedy_merge_symbolic(view, ranked, evaluate, settings)
    if merged is not None:
        ranked = [merged] + ranked

    # --- validate candidates in cost order --------------------------------
    persistent_before = persistent_edges_symbolic(view)
    examined = 0
    for candidate in ranked:
        check_deadline()
        if examined >= settings.max_validity_checks:
            break
        if not settings.allow_input_delay and candidate.cost.input_delays > 0:
            # The SIP check would reject it anyway; keep scanning so that
            # deeper input-preserving candidates get their chance.
            continue
        examined += 1
        check = check_insertion_symbolic(
            view,
            candidate.evaluation.partition,
            signal=signal,
            persistent_before=persistent_before,
            check_commutativity=settings.check_commutativity,
            allow_input_delay=settings.allow_input_delay,
        )
        if not check.ok:
            continue
        child_conflicts: Optional[ConflictContext] = None
        if settings.require_actual_progress and check.new_view is not None:
            child_conflicts = conflict_context(check.new_view)
            if child_conflicts.pairs >= full_conflict_count:
                # Valid but useless: it would not reduce the number of
                # conflicts, so keep looking for a candidate that does.
                continue
        return SymbolicInsertionPlan(
            signal=signal,
            block=candidate.states,
            partition=candidate.evaluation.partition,
            cost=candidate.cost,
            check=check,
            conflicts_before=min(full_conflict_count, settings.max_conflict_pairs),
            candidates_examined=examined,
            child_conflicts=child_conflicts,
        )
    return None


_MISSING = object()


def _greedy_merge_symbolic(
    view: SymbolicGraphView,
    ranked: Sequence[_SymbolicCandidate],
    evaluate,
    settings: SearchSettings,
) -> Optional[_SymbolicCandidate]:
    """Union of the best disconnected blocks (twin of ``_greedy_merge``)."""
    if not ranked:
        return None
    bdd = view.bdd
    best = ranked[0]
    current_states = best.states
    current_bricks = best.brick_indices
    current_eval = best.evaluation
    improved = False
    for other in ranked[1 : settings.max_merge_candidates]:
        union_states = bdd.apply_or(current_states, other.states)
        if (
            view.size_of(union_states) >= view.num_states
            or union_states == current_states
        ):
            continue
        evaluation = evaluate(union_states)
        if evaluation is None:
            continue
        if evaluation.cost < current_eval.cost:
            current_states = union_states
            current_bricks = current_bricks | other.brick_indices
            current_eval = evaluation
            improved = True
    if not improved:
        return None
    return _SymbolicCandidate(
        current_states,
        view.size_of(current_states),
        current_bricks,
        current_eval,
    )


# ----------------------------------------------------------------------
# the solver loop (twin of core.solver.solve_csc)
# ----------------------------------------------------------------------
@dataclass
class SymbolicEncodingResult:
    """Outcome of a fully symbolic CSC-solving run.

    Duck-types :class:`repro.core.solver.EncodingResult` for every
    consumer that matters — ``records``, ``solved``,
    ``conflicts_remaining``, ``inserted_signals``, ``summary()`` and
    ``fingerprint()`` — without carrying explicit state graphs (there is
    nothing to materialize)."""

    name: str
    states_before: int
    states_after: int
    signals_before: int
    signals_after: int
    records: List[InsertionRecord] = field(default_factory=list)
    solved: bool = False
    conflicts_remaining: int = 0
    cpu_seconds: float = 0.0

    @property
    def inserted_signals(self) -> List[str]:
        return [record.signal for record in self.records]

    @property
    def num_inserted(self) -> int:
        return len(self.records)

    def summary(self) -> Dict[str, object]:
        """Same shape as :meth:`EncodingResult.summary` so benchmark
        tables and service verdicts are engine-agnostic."""
        return {
            "name": self.name,
            "states_before": self.states_before,
            "states_after": self.states_after,
            "signals_before": self.signals_before,
            "signals_after": self.signals_after,
            "inserted": self.num_inserted,
            "solved": self.solved,
            "conflicts_remaining": self.conflicts_remaining,
            "insertions": [record.as_dict() for record in self.records],
            "cpu_seconds": round(self.cpu_seconds, 3),
        }

    def fingerprint(self) -> Dict[str, object]:
        """The summary minus timing (the conformance harness pins this
        against the explicit engine's fingerprint)."""
        flat = self.summary()
        del flat["cpu_seconds"]
        return flat


def _fresh_signal_name(view: SymbolicGraphView, prefix: str, counter: int) -> str:
    name = f"{prefix}{counter}"
    existing = set(view.signals)
    while name in existing:
        counter += 1
        name = f"{prefix}{counter}"
    return name


def solve_csc_symbolic(
    ssg: SymbolicStateGraph, settings: Optional[SolverSettings] = None
) -> SymbolicEncodingResult:
    """Insert state signals until CSC holds, never leaving BDD space.

    The loop structure, naming, progress rule and budget semantics are
    those of :func:`repro.core.solver.solve_csc`; each iteration's
    conflict relation is computed once and handed to both the search's
    cost model and the progress check, and the expanded graph's relation
    is reused as the next iteration's.
    """
    settings = settings or SolverSettings()
    view = SymbolicGraphView.from_stategraph(ssg)
    watch = Stopwatch().start()
    result = SymbolicEncodingResult(
        name=view.name,
        states_before=view.num_states,
        states_after=view.num_states,
        signals_before=len(view.signals),
        signals_after=len(view.signals),
    )

    current = view
    current_conflicts: Optional[ConflictContext] = None
    for counter in range(settings.max_signals):
        check_deadline()  # per-job wall-clock bound (repro.utils.deadline)
        if current_conflicts is None:
            with span("symbolic.solver.conflicts", states=current.num_states):
                current_conflicts = conflict_context(current)
        if current_conflicts.pairs == 0:
            result.solved = True
            break
        signal = _fresh_signal_name(current, settings.signal_prefix, counter)
        with span(
            "symbolic.solver.search", signal=signal, conflicts=current_conflicts.pairs
        ):
            plan = find_insertion_plan_symbolic(
                current, signal, settings.search, conflicts=current_conflicts
            )
        if plan is None:
            if settings.verbose:
                _log.info(
                    "no_valid_insertion",
                    name=view.name,
                    conflicts=current_conflicts.pairs,
                )
            break
        new_view = plan.new_view
        child_conflicts = plan.child_conflicts
        if child_conflicts is None:
            with span("symbolic.solver.conflicts", states=new_view.num_states):
                child_conflicts = conflict_context(new_view)
        if (
            settings.require_progress
            and child_conflicts.pairs >= current_conflicts.pairs
        ):
            if settings.verbose:
                _log.info(
                    "insertion_not_reducing",
                    name=view.name,
                    signal=signal,
                    conflicts_before=current_conflicts.pairs,
                    conflicts_after=child_conflicts.pairs,
                )
            break
        result.records.append(
            InsertionRecord(
                signal=signal,
                conflicts_before=current_conflicts.pairs,
                conflicts_after=child_conflicts.pairs,
                states_before=current.num_states,
                states_after=new_view.num_states,
                splus_size=current.size_of(plan.partition.splus),
                sminus_size=current.size_of(plan.partition.sminus),
                cost=plan.cost,
                candidates_examined=plan.candidates_examined,
            )
        )
        emit_progress(
            stage="solver",
            name=view.name,
            iteration=counter,
            signal=signal,
            conflicts_before=current_conflicts.pairs,
            conflicts_remaining=child_conflicts.pairs,
            states=new_view.num_states,
            candidates_examined=plan.candidates_examined,
            inserted=len(result.records),
        )
        if settings.verbose:
            _log.info(
                "inserted",
                name=view.name,
                signal=signal,
                conflicts_before=current_conflicts.pairs,
                conflicts_after=child_conflicts.pairs,
                states_before=current.num_states,
                states_after=new_view.num_states,
            )
        current = new_view
        current_conflicts = child_conflicts

    if current_conflicts is None:
        current_conflicts = conflict_context(current)
    result.states_after = current.num_states
    result.signals_after = len(current.signals)
    result.solved = current_conflicts.pairs == 0
    result.conflicts_remaining = current_conflicts.pairs
    result.cpu_seconds = watch.stop()
    return result
