"""The symbolic (BDD-backed) state graph.

A :class:`SymbolicStateGraph` is the front half of the CSC pipeline
without the states: the reachable state space of an STG, the per-event
transition structure and the binary-code valuation are all boolean
functions over *state variables* — one BDD variable per place of the
underlying safe Petri net plus one per signal — instead of enumerated
state objects.  A state of the explicit
:class:`~repro.stg.state_graph.StateGraph` is a reachable marking
labelled with its code; here it is one satisfying assignment of the
``reached`` function, whose place bits are the marking and whose signal
bits are the code.  Carrying the signal bits *in* the state vector is
what makes every later question about codes (the CSC code-equality
relation above all) a plain boolean operation: the valuation of signal
``s`` is literally the variable of ``s``.

Variable layout
---------------
State variables are laid out in signal-locality order
(:func:`state_variable_order`): every place is assigned to its most
local adjacent signal, and signals are emitted in BFS order over their
adjacency graph, each followed by its assigned places.  Variables that
interact (the places and signals of one handshake, one pipeline stage,
one toggle element) therefore sit next to each other, which keeps the
reachable set of product-structured specifications — the very workloads
this tier exists for — linear instead of exponential in the number of
components.

Every state variable ``k`` owns *two* BDD levels: ``2*k`` for the plain
(unprimed) copy and ``2*k + 1`` for the primed copy
(:func:`repro.bdd.bdd.interleaved_pair_levels`).  Exploration only
touches unprimed levels; the primed copy exists for the relational CSC
detector (:mod:`repro.symbolic.csc`), which needs two states side by
side.

Exploration
-----------
Images are computed with the safeness trick of
:mod:`repro.bdd.symbolic` — restrict to the enabling condition,
quantify the changed variables, constrain them to their post-firing
values — extended with the fired signal's variable, which every
transition of signal ``s`` pins to ``value_before`` in its enabling cube
and flips in its after cube.  Initial signal values are inferred the
same way the explicit encoder does, but without building any state
graph: a bounded marking-only BFS finds, per signal, the first edge of
that signal that can fire (consistency forces its ``value_before`` to be
the initial value), stopping as soon as every signal is resolved.

The class also carries the symbolic twins of the explicit front-end
checks: safeness and consistency violations are detected on the reached
set and raised as :class:`~repro.stg.state_graph.InconsistentSTGError`,
mirroring :func:`repro.stg.state_graph.build_state_graph`.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.bdd.bdd import BDD, Node, interleaved_pair_levels
from repro.obs import span
from repro.petri.net import Marking
from repro.stg.signals import SignalEdge
from repro.stg.state_graph import InconsistentSTGError
from repro.stg.stg import STG
from repro.utils.deadline import check_deadline

Place = Hashable

__all__ = ["SymbolicStateGraph", "SymbolicCensus", "state_variable_order"]


def state_variable_order(stg: STG) -> List[Tuple[str, Hashable]]:
    """State variables of ``stg`` in signal-locality order.

    Returns ``[(kind, name), ...]`` with ``kind`` in ``{"signal",
    "place"}``.  Variables that interact must sit next to each other or
    the reached-set BDD of a product-structured specification grows
    exponentially in the number of components, so the order is built
    from the *signal adjacency graph* (two signals are adjacent when a
    place touches transitions of both):

    * each place is assigned to its most local adjacent signal — the one
      with the fewest adjacent places, so a branch place of a fork/join
      belongs to the branch signal, not to the shared trunk signal;
    * signals are emitted in BFS order over the adjacency graph (seeded
      in declaration order), each followed by its assigned places.

    For a fork/join (``par``) this yields trunk, then one contiguous
    block per branch; for a product of independent components (``pipe``)
    one contiguous block per component — the layouts under which the
    symbolic tier's BDDs stay linear in the component count.  Places and
    signals nothing points at are appended at the end.
    """
    net = stg.net
    signals = list(stg.signals)
    signal_pos = {signal: i for i, signal in enumerate(signals)}

    # place -> adjacent signals (via the labels of adjacent transitions)
    place_signals: Dict[Hashable, List[str]] = {place: [] for place in net.places}
    for transition in net.transitions:
        label = stg.label_of(transition)
        if label is None:
            continue
        signal = label.signal
        for place in list(net.preset(transition)) + list(net.postset(transition)):
            neighbours = place_signals[place]
            if signal not in neighbours:
                neighbours.append(signal)

    # signal -> number of adjacent places (its locality weight)
    signal_degree: Dict[str, int] = {signal: 0 for signal in signals}
    for neighbours in place_signals.values():
        for signal in neighbours:
            signal_degree[signal] += 1

    # assign each place to its most local adjacent signal
    assigned: Dict[str, List[Hashable]] = {signal: [] for signal in signals}
    orphan_places: List[Hashable] = []
    for place, neighbours in place_signals.items():
        if not neighbours:
            orphan_places.append(place)
            continue
        owner = min(neighbours, key=lambda s: (signal_degree[s], signal_pos[s]))
        assigned[owner].append(place)

    # signal adjacency graph, BFS-ordered from the declaration order
    adjacency: Dict[str, List[str]] = {signal: [] for signal in signals}
    for neighbours in place_signals.values():
        for first in neighbours:
            for second in neighbours:
                if second != first and second not in adjacency[first]:
                    adjacency[first].append(second)
    signal_order: List[str] = []
    visited = set()
    for seed in signals:
        if seed in visited:
            continue
        queue = [seed]
        visited.add(seed)
        while queue:
            signal = queue.pop(0)
            signal_order.append(signal)
            for neighbour in sorted(adjacency[signal], key=lambda s: signal_pos[s]):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)

    order: List[Tuple[str, Hashable]] = []
    for signal in signal_order:
        order.append(("signal", signal))
        for place in assigned[signal]:
            order.append(("place", place))
    for place in orphan_places:
        order.append(("place", place))
    return order


@dataclass
class _SymbolicTransition:
    """One compiled net transition (all cubes over unprimed levels)."""

    name: Hashable
    edge: SignalEdge  # base edge (occurrence index dropped)
    enabling: Node  # preset places at 1 AND signal at value_before
    place_enabling: Node  # preset places at 1 only (marking token game)
    produced_empty: Node  # postset-minus-preset places at 0 (safeness)
    changed_levels: List[int]  # quantified by the image: places + signal
    after: Node  # post-firing values of the changed variables
    place_changed_levels: List[int]  # marking-only image: places alone
    place_after: Node  # post-firing place values alone


@dataclass
class SymbolicCensus:
    """The structured result of one symbolic state-space census."""

    name: str
    states: int
    places: int
    transitions: int
    signals: int
    iterations: int
    bdd_nodes: int
    reached_nodes: int
    seconds: float
    cache: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "states": self.states,
            "places": self.places,
            "transitions": self.transitions,
            "signals": self.signals,
            "iterations": self.iterations,
            "bdd_nodes": self.bdd_nodes,
            "reached_nodes": self.reached_nodes,
            "seconds": round(self.seconds, 3),
            "cache": dict(self.cache),
        }


#: Node-table size at which an opted-in engine first triggers sifting.
AUTO_REORDER_THRESHOLD = 20000


class SymbolicStateGraph:
    """BDD-backed state graph of one STG (see module docstring).

    ``reorder=True`` opts the manager into dynamic variable reordering:
    once the node table outgrows :data:`AUTO_REORDER_THRESHOLD`, sifting
    runs between exploration passes (the quiescent points of the
    fixpoint), keeping each (unprimed, primed) variable pair adjacent so
    the relational prime/unprime renames stay order-preserving.  All
    verdicts and sat-counts are unaffected — only node-table shape and
    wall-clock change.
    """

    def __init__(
        self,
        stg: STG,
        max_cache_entries: Optional[int] = None,
        reorder: bool = False,
    ) -> None:
        if stg.dummy_transitions:
            raise NotImplementedError(
                "symbolic state graphs of STGs with dummy transitions are not supported"
            )
        self.stg = stg
        self.name = stg.name
        net = stg.net
        for transition in net.transitions:
            for place, weight in list(net.preset(transition).items()) + list(
                net.postset(transition).items()
            ):
                if weight != 1:
                    raise ValueError(
                        "the symbolic tier supports safe nets with unit arc weights only"
                    )

        self.variables: List[Tuple[str, Hashable]] = state_variable_order(stg)
        self.num_state_vars = len(self.variables)
        #: state variable index -> unprimed BDD level (2*k); primed is 2*k+1.
        self.var_index: Dict[Tuple[str, Hashable], int] = {
            key: k for k, key in enumerate(self.variables)
        }
        self.place_vars: Dict[Place, int] = {
            name: k for k, (kind, name) in enumerate(self.variables) if kind == "place"
        }
        self.signal_vars: Dict[str, int] = {
            name: k for k, (kind, name) in enumerate(self.variables) if kind == "signal"
        }
        self.unprimed_levels, self.primed_levels = interleaved_pair_levels(
            self.num_state_vars
        )
        self.reorder = reorder
        #: sift groups: each state variable stays adjacent to its primed twin
        self.pair_groups: List[Tuple[int, int]] = [
            (2 * k, 2 * k + 1) for k in range(self.num_state_vars)
        ]
        self.bdd = BDD(
            2 * self.num_state_vars,
            max_cache_entries=max_cache_entries,
            auto_reorder_threshold=AUTO_REORDER_THRESHOLD if reorder else None,
        )
        # The recursive BDD operations descend one frame per level (with
        # nested ite calls inside exists); leave generous headroom for
        # specifications with hundreds of state variables.
        needed_recursion = 8 * self.bdd.num_vars + 1000
        if sys.getrecursionlimit() < needed_recursion:
            sys.setrecursionlimit(needed_recursion)

        self.signals: List[str] = list(stg.signals)
        self._transitions: List[_SymbolicTransition] = [
            self._compile_transition(name) for name in net.transitions
        ]
        self._by_signal: Dict[str, List[_SymbolicTransition]] = {}
        for transition in self._transitions:
            self._by_signal.setdefault(transition.edge.signal, []).append(transition)

        self.initial_values: Dict[str, int] = {}
        self.reached: Optional[Node] = None
        self.iterations = 0
        self.explore_seconds = 0.0
        self._enabled_cache: Dict[SignalEdge, Node] = {}

    # ------------------------------------------------------------------
    # variable plumbing
    # ------------------------------------------------------------------
    def unprimed(self, state_var: int) -> int:
        return 2 * state_var

    def primed(self, state_var: int) -> int:
        return 2 * state_var + 1

    def _compile_transition(self, name: Hashable) -> _SymbolicTransition:
        net = self.stg.net
        bdd = self.bdd
        label = self.stg.label_of(name)
        assert label is not None  # dummies rejected in __init__
        edge = label.base()
        signal_level = self.unprimed(self.signal_vars[edge.signal])

        preset = list(net.preset(name))
        postset = list(net.postset(name))
        consumed = [p for p in preset if p not in set(postset)]
        produced = [p for p in postset if p not in set(preset)]

        place_enabling = bdd.conjoin(
            bdd.var(self.unprimed(self.place_vars[p])) for p in preset
        )
        signal_literal = (
            bdd.nvar(signal_level) if edge.is_rising else bdd.var(signal_level)
        )
        enabling = bdd.apply_and(place_enabling, signal_literal)
        produced_empty = bdd.conjoin(
            bdd.nvar(self.unprimed(self.place_vars[p])) for p in produced
        )

        place_changed_levels = sorted(
            [self.unprimed(self.place_vars[p]) for p in consumed]
            + [self.unprimed(self.place_vars[p]) for p in produced]
        )
        changed_levels = sorted(place_changed_levels + [signal_level])
        place_after_literals = [
            bdd.nvar(self.unprimed(self.place_vars[p])) for p in consumed
        ]
        place_after_literals += [
            bdd.var(self.unprimed(self.place_vars[p])) for p in produced
        ]
        place_after = bdd.conjoin(place_after_literals)
        after = bdd.apply_and(
            place_after,
            bdd.var(signal_level) if edge.is_rising else bdd.nvar(signal_level),
        )
        return _SymbolicTransition(
            name=name,
            edge=edge,
            enabling=enabling,
            place_enabling=place_enabling,
            produced_empty=produced_empty,
            changed_levels=changed_levels,
            after=after,
            place_changed_levels=place_changed_levels,
            place_after=place_after,
        )

    # ------------------------------------------------------------------
    # initial state
    # ------------------------------------------------------------------
    def _initial_marking_cube(self) -> Node:
        marking = self.stg.initial_marking
        assignment: Dict[int, int] = {}
        for place, var in self.place_vars.items():
            count = marking.count(place)
            if count > 1:
                raise InconsistentSTGError(
                    f"the initial marking of {self.name!r} is not safe"
                )
            assignment[self.unprimed(var)] = 1 if count else 0
        return self.bdd.cube(assignment)

    def infer_initial_values(self) -> Dict[str, int]:
        """Initial signal values, inferred without building a state graph.

        Declared values (``stg.initial_values``) win.  For the rest, a
        marking-only BFS from the initial marking finds the first level at
        which some transition of the signal is enabled; consistency makes
        its ``value_before`` the initial value (every firing sequence
        must alternate the signal starting there).  Signals whose
        transitions are never enabled keep the declared/default value —
        exactly the fallback of
        :func:`repro.stg.state_graph.infer_encoding`.  Two first-enabled
        edges of one signal that disagree on ``value_before`` mean the
        STG is not consistent.
        """
        if self.initial_values:
            return self.initial_values
        bdd = self.bdd
        values: Dict[str, int] = dict(self.stg.initial_values)
        pending = [s for s in self.signals if s not in values]

        reached = self._initial_marking_cube()
        frontier = reached
        while pending and frontier != bdd.false:
            check_deadline()
            resolved: List[str] = []
            for signal in pending:
                befores = {
                    0 if t.edge.is_rising else 1
                    for t in self._by_signal.get(signal, ())
                    if bdd.apply_and(frontier, t.place_enabling) != bdd.false
                }
                if len(befores) > 1:
                    raise InconsistentSTGError(
                        f"signal {signal!r} can first fire both rising and falling "
                        f"from the initial marking of {self.name!r}"
                    )
                if befores:
                    values[signal] = befores.pop()
                    resolved.append(signal)
            pending = [s for s in pending if s not in set(resolved)]
            if not pending:
                break
            new = bdd.false
            for transition in self._transitions:
                enabled = bdd.apply_and(frontier, transition.place_enabling)
                if enabled == bdd.false:
                    continue
                moved = bdd.exists(enabled, transition.place_changed_levels)
                moved = bdd.apply_and(moved, transition.place_after)
                new = bdd.apply_or(new, moved)
            new = bdd.apply_diff(new, reached)
            reached = bdd.apply_or(reached, new)
            frontier = new
        for signal in pending:
            values[signal] = 0
        self.initial_values = {s: values.get(s, 0) for s in self.signals}
        return self.initial_values

    def initial_cube(self) -> Node:
        """The initial state (marking bits + inferred code bits) as a cube."""
        values = self.infer_initial_values()
        assignment: Dict[int, int] = {}
        marking = self.stg.initial_marking
        for place, var in self.place_vars.items():
            assignment[self.unprimed(var)] = 1 if marking.count(place) else 0
        for signal, var in self.signal_vars.items():
            assignment[self.unprimed(var)] = values[signal]
        return self.bdd.cube(assignment)

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------
    def image(self, states: Node) -> Node:
        """States reachable from ``states`` in exactly one firing."""
        bdd = self.bdd
        result = bdd.false
        for transition in self._transitions:
            check_deadline()
            moved = bdd.and_exists(
                states, transition.enabling, transition.changed_levels
            )
            if moved == bdd.false:
                continue
            moved = bdd.apply_and(moved, transition.after)
            result = bdd.apply_or(result, moved)
        return result

    def preimage(self, states: Node) -> Node:
        """States with a one-firing successor inside ``states``.

        May include unreachable states; intersect with :meth:`explore`'s
        result when a reachable preimage is needed.
        """
        bdd = self.bdd
        result = bdd.false
        for transition in self._transitions:
            check_deadline()
            moved = bdd.and_exists(
                states, transition.after, transition.changed_levels
            )
            if moved == bdd.false:
                continue
            moved = bdd.apply_and(moved, transition.enabling)
            moved = bdd.apply_and(moved, transition.produced_empty)
            result = bdd.apply_or(result, moved)
        return result

    def explore(self) -> Node:
        """Fixpoint of the image computation from the initial state.

        Uses *chained* iteration — each transition's image is folded into
        the reached set immediately, so one pass over the (locality-
        ordered) transition list propagates a whole wavefront down a
        coupled chain.  On the pipeline-style benchmarks this converges
        in a handful of passes where breadth-first frontiers need one
        iteration per BFS level and build far larger "exact distance"
        BDDs; the fixpoint itself is the same unique reachable set.
        ``iterations`` counts the passes.
        """
        if self.reached is not None:
            return self.reached
        started = time.perf_counter()
        bdd = self.bdd
        reached = self.initial_cube()
        self.iterations = 0
        changed = True
        with span("bdd.apply", graph=self.name, phase="explore"):
            while changed:
                changed = False
                self.iterations += 1
                for transition in self._transitions:
                    check_deadline()
                    moved = bdd.and_exists(
                        reached, transition.enabling, transition.changed_levels
                    )
                    if moved == bdd.false:
                        continue
                    moved = bdd.apply_and(moved, transition.after)
                    new = bdd.apply_diff(moved, reached)
                    if new != bdd.false:
                        reached = bdd.apply_or(reached, new)
                        changed = True
                # a pass boundary is a quiescent point: no operation in
                # flight, so sifting may rewrite the node table freely
                bdd.maybe_reorder(groups=self.pair_groups)
        self.reached = reached
        self.explore_seconds = time.perf_counter() - started
        self._check_safe_and_consistent()
        return reached

    def _check_safe_and_consistent(self) -> None:
        """Symbolic twins of the explicit front-end checks.

        Unsafe: some reachable state enables a transition by tokens while
        one of its produced places is already marked (the next firing
        would double a token).  Inconsistent: some reachable state
        enables a transition by tokens while the fired signal already
        holds its post-firing value (the explicit encoder's per-arc value
        contradiction).  Both raise
        :class:`~repro.stg.state_graph.InconsistentSTGError`, mirroring
        :func:`repro.stg.state_graph.build_state_graph`.
        """
        bdd = self.bdd
        assert self.reached is not None
        for transition in self._transitions:
            check_deadline()
            tokens_enabled = bdd.apply_and(self.reached, transition.place_enabling)
            if tokens_enabled == bdd.false:
                continue
            if bdd.apply_diff(tokens_enabled, transition.produced_empty) != bdd.false:
                raise InconsistentSTGError(
                    f"the underlying Petri net of {self.name!r} is not safe; the "
                    "region-based encoding theory assumes safe STGs"
                )
            if bdd.apply_diff(tokens_enabled, transition.enabling) != bdd.false:
                raise InconsistentSTGError(
                    f"transition {transition.name!r} of {self.name!r} is enabled in a "
                    f"reachable state whose {transition.edge.signal!r} value already "
                    "matches its post-firing value; the STG is not consistent"
                )

    # ------------------------------------------------------------------
    # census and per-event structure
    # ------------------------------------------------------------------
    def count_states(self) -> int:
        """Number of reachable states (explores first if needed)."""
        reached = self.explore()
        return self.bdd.sat_count(reached, self.unprimed_levels)

    def census(self) -> SymbolicCensus:
        """Explore (if needed) and report the structured census."""
        started = time.perf_counter()
        states = self.count_states()
        seconds = self.explore_seconds or (time.perf_counter() - started)
        stats = self.stg.stats()
        assert self.reached is not None
        return SymbolicCensus(
            name=self.name,
            states=states,
            places=stats["places"],
            transitions=stats["transitions"],
            signals=stats["signals"],
            iterations=self.iterations,
            bdd_nodes=self.bdd.num_nodes,
            reached_nodes=self._node_count(self.reached),
            seconds=seconds,
            cache=self.bdd.cache_stats(),
        )

    def _node_count(self, node: Node) -> int:
        # complement edges: ±r share one structural node, dedup on abs;
        # the single shared terminal still reports as 2 (TRUE and FALSE)
        # to stay comparable with pre-complement-edge censuses
        seen = set()
        stack = [abs(node)]
        while stack:
            current = stack.pop()
            if current == 1 or current in seen:
                continue
            seen.add(current)
            stack.append(abs(self.bdd.low(current)))
            stack.append(abs(self.bdd.high(current)))
        return len(seen) + 2

    def base_edges(self) -> List[SignalEdge]:
        """The base signal edges of the STG, in first-occurrence order."""
        edges: Dict[SignalEdge, None] = {}
        for transition in self._transitions:
            edges.setdefault(transition.edge, None)
        return list(edges)

    def enabled_predicate(self, edge: SignalEdge) -> Node:
        """States enabling base edge ``edge`` (union over its occurrences),
        as a function of the unprimed state variables."""
        edge = edge.base()
        cached = self._enabled_cache.get(edge)
        if cached is None:
            cached = self.bdd.disjoin(
                t.enabling for t in self._transitions if t.edge == edge
            )
            self._enabled_cache[edge] = cached
        return cached

    def er_set(self, edge: SignalEdge) -> Node:
        """The excitation set of ``edge`` — reachable states enabling it
        (the union of its excitation regions)."""
        return self.bdd.apply_and(self.explore(), self.enabled_predicate(edge))

    def sr_set(self, edge: SignalEdge) -> Node:
        """The switching set of ``edge`` — states entered by firing it."""
        bdd = self.bdd
        edge = edge.base()
        reached = self.explore()
        result = bdd.false
        for transition in self._transitions:
            if transition.edge != edge:
                continue
            enabled = bdd.apply_and(reached, transition.enabling)
            if enabled == bdd.false:
                continue
            moved = bdd.exists(enabled, transition.changed_levels)
            result = bdd.apply_or(result, bdd.apply_and(moved, transition.after))
        return result

    # ------------------------------------------------------------------
    # decoding (tests, witnesses, materialization)
    # ------------------------------------------------------------------
    def decode_state(self, assignment: Dict[int, int]) -> Tuple[Marking, Tuple[int, ...]]:
        """Decode an unprimed-level assignment into ``(marking, code)``.

        ``assignment`` maps BDD levels to values; missing levels read as
        0 (the completion :meth:`repro.bdd.bdd.BDD.pick_cube` implies).
        The code tuple follows the STG's signal declaration order, like
        the explicit encoding.
        """
        tokens = {
            place: 1
            for place, var in self.place_vars.items()
            if assignment.get(self.unprimed(var), 0)
        }
        code = tuple(
            assignment.get(self.unprimed(self.signal_vars[s]), 0) for s in self.signals
        )
        return Marking(tokens), code

    def states_of(
        self, node: Node, limit: Optional[int] = None
    ) -> Iterator[Tuple[Marking, Tuple[int, ...]]]:
        """Enumerate the states of a state-set BDD (small sets only)."""
        produced = 0
        for assignment in self._assignments_over(node, self.unprimed_levels):
            yield self.decode_state(assignment)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def _assignments_over(
        self, node: Node, levels: Sequence[int]
    ) -> Iterator[Dict[int, int]]:
        """All satisfying assignments of ``node`` over exactly ``levels``."""
        bdd = self.bdd
        # walk in the manager's *current* level order (identical to the
        # numeric order unless a reorder ran) so the descent matches the
        # structural order of the diagram
        rank = {var: i for i, var in enumerate(bdd.var_order())}
        ordered = sorted(levels, key=rank.__getitem__)
        level_set = set(ordered)

        def walk(current: Node, position: int, prefix: Dict[int, int]):
            if current == bdd.false:
                return
            if position == len(ordered):
                if current != bdd.true:
                    raise ValueError("function depends on a level outside the set")
                yield dict(prefix)
                return
            level = ordered[position]
            node_level = bdd.level(current)
            if node_level not in level_set and current != bdd.true:
                raise ValueError("function depends on a level outside the set")
            for value in (0, 1):
                if current != bdd.true and node_level == level:
                    child = bdd.high(current) if value else bdd.low(current)
                else:
                    child = current
                prefix[level] = value
                yield from walk(child, position + 1, prefix)
            del prefix[level]

        yield from walk(node, 0, {})

    def contains(self, node: Node, marking: Marking, code: Sequence[int]) -> bool:
        """Membership test of one explicit ``(marking, code)`` state."""
        assignment = [0] * self.bdd.num_vars
        for place, var in self.place_vars.items():
            if marking.count(place):
                assignment[self.unprimed(var)] = 1
        for position, signal in enumerate(self.signals):
            assignment[self.unprimed(self.signal_vars[signal])] = int(code[position])
        return self.bdd.evaluate(node, assignment) == 1

    def __repr__(self) -> str:
        return (
            f"SymbolicStateGraph(name={self.name!r}, "
            f"state_vars={self.num_state_vars}, bdd_nodes={self.bdd.num_nodes})"
        )
