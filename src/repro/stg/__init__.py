"""Signal Transition Graphs (STGs).

An STG is a Petri net whose transitions are labelled with rising (``a+``)
and falling (``a-``) transitions of circuit signals.  This package
provides the STG model, a parser/writer for the ``.g`` (astg) exchange
format used by SIS / petrify, and the elaboration of an STG into its
binary-encoded state graph (the transition system on which the CSC theory
of the paper operates).
"""

from repro.stg.signals import (
    FALL,
    RISE,
    SignalEdge,
    SignalType,
)
from repro.stg.stg import STG
from repro.stg.parser import parse_g, read_g_file
from repro.stg.writer import write_g, stg_to_g_text
from repro.stg.state_graph import (
    StateGraph,
    InconsistentSTGError,
    build_state_graph,
    infer_encoding,
)

__all__ = [
    "RISE",
    "FALL",
    "SignalEdge",
    "SignalType",
    "STG",
    "parse_g",
    "read_g_file",
    "write_g",
    "stg_to_g_text",
    "StateGraph",
    "InconsistentSTGError",
    "build_state_graph",
    "infer_encoding",
]
