"""Signals, signal types and signal-transition labels.

The paper writes ``x+`` and ``x-`` for the rising and falling transitions
of a signal ``x``; STG transition names may carry an occurrence index
(``x+/2``) when the same signal change appears several times in the net.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Tuple

RISE = 1
FALL = -1

_EDGE_RE = re.compile(r"^(?P<signal>[A-Za-z_][\w\.\[\]]*)(?P<dir>[+\-~])(?:/(?P<index>\d+))?$")


class SignalType(Enum):
    """Role of a signal in the specification.

    Inputs are controlled by the environment: the encoding process is not
    allowed to delay them (Section 5, "x cannot be inserted before input
    events").  Outputs and internal signals are produced by the circuit and
    must satisfy CSC; internal signals (including inserted state signals)
    are additionally invisible to the environment.
    """

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    DUMMY = "dummy"

    @property
    def is_input(self) -> bool:
        return self is SignalType.INPUT

    @property
    def is_noninput(self) -> bool:
        return self in (SignalType.OUTPUT, SignalType.INTERNAL)


@dataclass(frozen=True, order=True)
class SignalEdge:
    """A signal transition label: ``signal`` changes in ``direction``.

    ``index`` distinguishes multiple occurrences of the same signal change
    in an STG (``a+/1`` vs ``a+/2``).  In a state graph the occurrence
    index is dropped (see :meth:`base`): all occurrences of ``a+`` denote
    the same value change of the same signal.
    """

    signal: str
    direction: int
    index: int = 0

    def __post_init__(self) -> None:
        if self.direction not in (RISE, FALL):
            raise ValueError(f"direction must be RISE(+1) or FALL(-1), got {self.direction}")
        if self.index < 0:
            raise ValueError("occurrence index must be non-negative")

    # -- constructors ----------------------------------------------------
    @classmethod
    def rise(cls, signal: str, index: int = 0) -> "SignalEdge":
        return cls(signal, RISE, index)

    @classmethod
    def fall(cls, signal: str, index: int = 0) -> "SignalEdge":
        return cls(signal, FALL, index)

    @classmethod
    def parse(cls, text: str) -> "SignalEdge":
        """Parse ``"a+"``, ``"req-/2"`` and friends."""
        match = _EDGE_RE.match(text.strip())
        if match is None or match.group("dir") == "~":
            raise ValueError(f"not a signal transition label: {text!r}")
        direction = RISE if match.group("dir") == "+" else FALL
        index = int(match.group("index")) if match.group("index") else 0
        return cls(match.group("signal"), direction, index)

    @staticmethod
    def is_edge_label(text: str) -> bool:
        """True iff ``text`` syntactically looks like a signal transition."""
        match = _EDGE_RE.match(text.strip())
        return match is not None and match.group("dir") != "~"

    # -- queries ---------------------------------------------------------
    @property
    def is_rising(self) -> bool:
        return self.direction == RISE

    @property
    def is_falling(self) -> bool:
        return self.direction == FALL

    def base(self) -> "SignalEdge":
        """The same signal change without its occurrence index."""
        if self.index == 0:
            return self
        return SignalEdge(self.signal, self.direction)

    def opposite(self) -> "SignalEdge":
        """The complementary change of the same signal (index dropped)."""
        return SignalEdge(self.signal, -self.direction)

    def value_before(self) -> int:
        """Value the signal must hold for this edge to be enabled."""
        return 0 if self.is_rising else 1

    def value_after(self) -> int:
        """Value the signal holds right after this edge fires."""
        return 1 if self.is_rising else 0

    # -- formatting -------------------------------------------------------
    def __str__(self) -> str:
        sign = "+" if self.is_rising else "-"
        suffix = f"/{self.index}" if self.index else ""
        return f"{self.signal}{sign}{suffix}"

    def __repr__(self) -> str:
        return f"SignalEdge({self.__str__()!r})"


def split_edge_name(text: str) -> Tuple[str, int, int]:
    """Return ``(signal, direction, index)`` for an edge label string."""
    edge = SignalEdge.parse(text)
    return edge.signal, edge.direction, edge.index
