"""Writer for the ``.g`` (astg) STG exchange format.

``stg_to_g_text`` is the inverse of :func:`repro.stg.parser.parse_g` up to
formatting: parsing the produced text yields an STG with the same places,
transitions, arcs and initial marking.

The output is *canonical*: ``.graph`` lines are emitted transition-major
in sorted order (targets sorted within each line, place lines sorted
after them) and the ``.marking`` tokens are sorted, so any two
structurally equal STGs serialise to the same bytes regardless of the
order their nets were built in — ``write -> parse -> write`` is
byte-stable (``tests/test_writer_roundtrip.py``).  Signal declaration
lines keep declaration order: signal order is semantically meaningful
(it fixes the code-vector layout of the state graph), and the parser
preserves it, which is all byte-stability needs.
"""

from __future__ import annotations

import re
from typing import List

from repro.stg.stg import STG

_IMPLICIT_RE = re.compile(r"^<([^,>]+),([^,>]+)>$")


def _graph_lines(stg: STG) -> List[str]:
    net = stg.net
    emitted_implicit = set()

    transition_lines: List[str] = []
    for transition in net.transitions:
        targets: List[str] = []
        for place in net.postset(transition):
            match = _IMPLICIT_RE.match(str(place))
            consumers = list(net.place_postset(place))
            producers = list(net.place_preset(place))
            if (
                match is not None
                and len(consumers) == 1
                and len(producers) == 1
                and match.group(1) == str(transition)
                and match.group(2) == str(consumers[0])
            ):
                # implicit place: emit a direct transition->transition arc
                targets.append(str(consumers[0]))
                emitted_implicit.add(place)
            else:
                targets.append(str(place))
        if targets:
            transition_lines.append(f"{transition} " + " ".join(sorted(targets)))

    place_lines: List[str] = []
    for place in net.places:
        if place in emitted_implicit:
            continue
        consumers = net.place_postset(place)
        if consumers:
            place_lines.append(f"{place} " + " ".join(sorted(str(t) for t in consumers)))
    return sorted(transition_lines) + sorted(place_lines)


def stg_to_g_text(stg: STG) -> str:
    """Serialise ``stg`` to ``.g`` text."""
    parts: List[str] = [f".model {stg.name}"]
    if stg.input_signals:
        parts.append(".inputs " + " ".join(stg.input_signals))
    if stg.output_signals:
        parts.append(".outputs " + " ".join(stg.output_signals))
    if stg.internal_signals:
        parts.append(".internal " + " ".join(stg.internal_signals))
    if stg.dummy_transitions:
        parts.append(".dummy " + " ".join(stg.dummy_transitions))
    parts.append(".graph")
    parts.extend(_graph_lines(stg))

    marking_tokens = []
    for place, count in stg.initial_marking.items():
        token = str(place)
        if count > 1:
            token = f"{token}={count}"
        marking_tokens.append(token)
    parts.append(".marking { " + " ".join(sorted(marking_tokens)) + " }")
    parts.append(".end")
    return "\n".join(parts) + "\n"


def write_g(stg: STG, path: str) -> None:
    """Write ``stg`` to a ``.g`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(stg_to_g_text(stg))
