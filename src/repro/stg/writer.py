"""Writer for the ``.g`` (astg) STG exchange format.

``stg_to_g_text`` is the inverse of :func:`repro.stg.parser.parse_g` up to
formatting: parsing the produced text yields an STG with the same places,
transitions, arcs and initial marking.
"""

from __future__ import annotations

import re
from typing import List

from repro.stg.stg import STG

_IMPLICIT_RE = re.compile(r"^<([^,>]+),([^,>]+)>$")


def _graph_lines(stg: STG) -> List[str]:
    lines = []
    net = stg.net
    emitted_implicit = set()

    for transition in net.transitions:
        targets: List[str] = []
        for place in net.postset(transition):
            match = _IMPLICIT_RE.match(str(place))
            consumers = list(net.place_postset(place))
            producers = list(net.place_preset(place))
            if (
                match is not None
                and len(consumers) == 1
                and len(producers) == 1
                and match.group(1) == str(transition)
                and match.group(2) == str(consumers[0])
            ):
                # implicit place: emit a direct transition->transition arc
                targets.append(str(consumers[0]))
                emitted_implicit.add(place)
            else:
                targets.append(str(place))
        if targets:
            lines.append(f"{transition} " + " ".join(targets))

    for place in net.places:
        if place in emitted_implicit:
            continue
        consumers = list(net.place_postset(place))
        if consumers:
            lines.append(f"{place} " + " ".join(str(t) for t in consumers))
    return lines


def stg_to_g_text(stg: STG) -> str:
    """Serialise ``stg`` to ``.g`` text."""
    parts: List[str] = [f".model {stg.name}"]
    if stg.input_signals:
        parts.append(".inputs " + " ".join(stg.input_signals))
    if stg.output_signals:
        parts.append(".outputs " + " ".join(stg.output_signals))
    if stg.internal_signals:
        parts.append(".internal " + " ".join(stg.internal_signals))
    if stg.dummy_transitions:
        parts.append(".dummy " + " ".join(stg.dummy_transitions))
    parts.append(".graph")
    parts.extend(_graph_lines(stg))

    marking_tokens = []
    for place, count in stg.initial_marking.items():
        token = str(place)
        if count > 1:
            token = f"{token}={count}"
        marking_tokens.append(token)
    parts.append(".marking { " + " ".join(marking_tokens) + " }")
    parts.append(".end")
    return "\n".join(parts) + "\n"


def write_g(stg: STG, path: str) -> None:
    """Write ``stg`` to a ``.g`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(stg_to_g_text(stg))
