"""The Signal Transition Graph model.

An :class:`STG` wraps a Petri net (``repro.petri.PetriNet``) whose
transitions are labelled with :class:`~repro.stg.signals.SignalEdge`
objects, together with the declaration of each signal's role
(input / output / internal / dummy).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.petri.net import Marking, PetriNet
from repro.stg.signals import SignalEdge, SignalType

NodeRef = Union[str, SignalEdge]


def implicit_place_name(source: str, target: str) -> str:
    """Name of the implicit place between two directly connected transitions."""
    return f"<{source},{target}>"


class STG:
    """A Petri net labelled with signal transitions."""

    def __init__(self, name: str = "stg") -> None:
        self.name = name
        self.net = PetriNet(name)
        self.signal_types: Dict[str, SignalType] = {}
        self._labels: Dict[str, Optional[SignalEdge]] = {}
        self.initial_values: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def add_signal(self, signal: str, signal_type: SignalType) -> str:
        existing = self.signal_types.get(signal)
        if existing is not None and existing is not signal_type:
            raise ValueError(
                f"signal {signal!r} already declared as {existing.value}, "
                f"cannot redeclare as {signal_type.value}"
            )
        self.signal_types[signal] = signal_type
        return signal

    def add_input(self, signal: str) -> str:
        return self.add_signal(signal, SignalType.INPUT)

    def add_output(self, signal: str) -> str:
        return self.add_signal(signal, SignalType.OUTPUT)

    def add_internal(self, signal: str) -> str:
        return self.add_signal(signal, SignalType.INTERNAL)

    @property
    def signals(self) -> List[str]:
        """All non-dummy signals, in declaration order."""
        return [s for s, t in self.signal_types.items() if t is not SignalType.DUMMY]

    @property
    def input_signals(self) -> List[str]:
        return [s for s, t in self.signal_types.items() if t is SignalType.INPUT]

    @property
    def output_signals(self) -> List[str]:
        return [s for s, t in self.signal_types.items() if t is SignalType.OUTPUT]

    @property
    def internal_signals(self) -> List[str]:
        return [s for s, t in self.signal_types.items() if t is SignalType.INTERNAL]

    @property
    def non_input_signals(self) -> List[str]:
        return [s for s, t in self.signal_types.items() if t.is_noninput]

    def type_of(self, signal: str) -> SignalType:
        return self.signal_types[signal]

    def is_input(self, signal: str) -> bool:
        return self.signal_types[signal] is SignalType.INPUT

    def set_initial_value(self, signal: str, value: int) -> None:
        if value not in (0, 1):
            raise ValueError("initial value must be 0 or 1")
        self.initial_values[signal] = value

    # ------------------------------------------------------------------
    # transitions and places
    # ------------------------------------------------------------------
    def _as_transition_name(self, ref: NodeRef, create: bool = False) -> str:
        """Resolve a node reference to a transition name."""
        if isinstance(ref, SignalEdge):
            name = str(ref)
        else:
            name = ref
        if not self.net.has_transition(name):
            if not create:
                raise KeyError(f"unknown transition {name!r}")
            self.add_transition(SignalEdge.parse(name))
        return name

    def add_transition(self, edge: Union[SignalEdge, str]) -> str:
        """Add a signal transition to the net (declares the signal if new
        signal types cannot be guessed this raises)."""
        if isinstance(edge, str):
            edge = SignalEdge.parse(edge)
        if edge.signal not in self.signal_types:
            raise ValueError(
                f"signal {edge.signal!r} must be declared before adding transition {edge}"
            )
        name = str(edge)
        if self.net.has_transition(name):
            return name
        self.net.add_transition(name)
        self._labels[name] = edge
        return name

    def add_dummy_transition(self, name: str) -> str:
        """Add a dummy (unobservable, unlabelled) transition."""
        if not self.net.has_transition(name):
            self.net.add_transition(name)
            self._labels[name] = None
            self.signal_types.setdefault(name, SignalType.DUMMY)
        return name

    def add_place(self, place: str, tokens: int = 0) -> str:
        self.net.add_place(place, tokens)
        return place

    def label_of(self, transition_name: str) -> Optional[SignalEdge]:
        """The signal edge labelling a transition (``None`` for dummies)."""
        return self._labels[transition_name]

    @property
    def transition_names(self) -> List[str]:
        return self.net.transitions

    @property
    def dummy_transitions(self) -> List[str]:
        return [t for t, lbl in self._labels.items() if lbl is None]

    # ------------------------------------------------------------------
    # arcs
    # ------------------------------------------------------------------
    def connect(self, source: NodeRef, target: NodeRef) -> None:
        """Add an arc between two nodes, inserting an implicit place when
        both endpoints are transitions (the ``.g`` convention)."""
        source_name = self._node_name(source)
        target_name = self._node_name(target)
        source_is_t = self.net.has_transition(source_name)
        target_is_t = self.net.has_transition(target_name)
        if source_is_t and target_is_t:
            place = implicit_place_name(source_name, target_name)
            self.add_place(place)
            self.net.add_arc(source_name, place)
            self.net.add_arc(place, target_name)
        elif source_is_t or target_is_t:
            # exactly one endpoint is a transition: the other must be a place
            if source_is_t:
                self.add_place(target_name)
            else:
                self.add_place(source_name)
            self.net.add_arc(source_name, target_name)
        else:
            raise ValueError(
                f"cannot connect two places: {source_name!r} -> {target_name!r}"
            )

    def _node_name(self, ref: NodeRef) -> str:
        if isinstance(ref, SignalEdge):
            return self._as_transition_name(ref, create=True)
        # A string: it is a transition if it parses as a declared signal edge
        # or is already a known transition; otherwise it is a place name.
        if self.net.has_transition(ref):
            return ref
        if SignalEdge.is_edge_label(ref):
            edge = SignalEdge.parse(ref)
            if edge.signal in self.signal_types:
                return self.add_transition(edge)
        return ref

    # ------------------------------------------------------------------
    # marking
    # ------------------------------------------------------------------
    def set_marking(self, places: Union[Dict[str, int], Iterable[str]]) -> None:
        """Set the initial marking from place names or a ``{place: count}``
        dict.  Implicit places can be given as ``(source, target)`` pairs of
        transition labels."""
        if isinstance(places, dict):
            tokens = dict(places)
        else:
            tokens = {}
            for item in places:
                if isinstance(item, tuple):
                    item = implicit_place_name(item[0], item[1])
                tokens[item] = tokens.get(item, 0) + 1
        self.net.set_initial_marking(tokens)

    @property
    def initial_marking(self) -> Marking:
        return self.net.initial_marking

    # ------------------------------------------------------------------
    # convenience builder
    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        arcs: Sequence[Tuple[str, str]],
        marking: Sequence[Union[str, Tuple[str, str]]],
        internal: Sequence[str] = (),
        initial_values: Optional[Dict[str, int]] = None,
    ) -> "STG":
        """Build an STG from a flat arc list.

        ``arcs`` contains pairs of node names (transition labels such as
        ``"a+"`` / ``"req-/2"`` or explicit place names); ``marking`` lists
        initially marked places, with implicit places given as
        ``(source_label, target_label)`` pairs.
        """
        stg = cls(name)
        for signal in inputs:
            stg.add_input(signal)
        for signal in outputs:
            stg.add_output(signal)
        for signal in internal:
            stg.add_internal(signal)
        for source, target in arcs:
            stg.connect(source, target)
        stg.set_marking(marking)
        if initial_values:
            for signal, value in initial_values.items():
                stg.set_initial_value(signal, value)
        return stg

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "STG":
        result = STG(name or self.name)
        result.net = self.net.copy(name or self.name)
        result.signal_types = dict(self.signal_types)
        result._labels = dict(self._labels)
        result.initial_values = dict(self.initial_values)
        return result

    def fresh_edge(self, signal: str, direction: int) -> SignalEdge:
        """A signal edge of ``signal`` whose name does not collide with an
        existing transition (used when splitting labels)."""
        index = 0
        while True:
            edge = SignalEdge(signal, direction, index)
            if not self.net.has_transition(str(edge)):
                return edge
            index += 1

    def stats(self) -> Dict[str, int]:
        """Size statistics reported in the benchmark tables."""
        return {
            "places": self.net.num_places,
            "transitions": self.net.num_transitions,
            "signals": len(self.signals),
            "arcs": self.net.num_arcs,
        }

    def __repr__(self) -> str:
        return (
            f"STG(name={self.name!r}, signals={len(self.signals)}, "
            f"places={self.net.num_places}, transitions={self.net.num_transitions})"
        )
