"""Binary-encoded state graphs.

The state graph (SG) of an STG is the reachability graph of its underlying
Petri net with every state labelled by the vector of signal values — the
binary-encoded transition system on which the whole CSC theory of the
paper operates.  A :class:`StateGraph` couples a
:class:`~repro.ts.transition_system.TransitionSystem` whose events are
:class:`~repro.stg.signals.SignalEdge` objects with the signal declaration
and the state encoding.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.stg.signals import SignalEdge, SignalType
from repro.stg.stg import STG
from repro.petri.reachability import build_reachability_graph
from repro.ts.transition_system import TransitionSystem
from repro.ts.properties import is_commutative, is_deterministic, is_event_persistent

State = Hashable
Code = Tuple[int, ...]


class InconsistentSTGError(ValueError):
    """Raised when an STG does not admit a consistent binary encoding.

    Consistency ("rising and falling transitions alternate for each signal
    in every firing sequence") is a necessary condition for
    implementability; CSC only makes sense on top of it (Section 4).
    """


class StateGraph:
    """A transition system together with a binary signal encoding."""

    def __init__(
        self,
        ts: TransitionSystem,
        signals: Sequence[str],
        signal_types: Dict[str, SignalType],
        encoding: Dict[State, Code],
        name: Optional[str] = None,
    ) -> None:
        self.ts = ts
        self.signals: List[str] = list(signals)
        self.signal_types = dict(signal_types)
        self.encoding = dict(encoding)
        self.name = name or ts.name
        self._index = {signal: position for position, signal in enumerate(self.signals)}

    # ------------------------------------------------------------------
    # signal bookkeeping
    # ------------------------------------------------------------------
    @property
    def input_signals(self) -> List[str]:
        return [s for s in self.signals if self.signal_types[s] is SignalType.INPUT]

    @property
    def output_signals(self) -> List[str]:
        return [s for s in self.signals if self.signal_types[s] is SignalType.OUTPUT]

    @property
    def internal_signals(self) -> List[str]:
        return [s for s in self.signals if self.signal_types[s] is SignalType.INTERNAL]

    @property
    def non_input_signals(self) -> List[str]:
        return [s for s in self.signals if self.signal_types[s].is_noninput]

    def signal_index(self, signal: str) -> int:
        return self._index[signal]

    def is_input_signal(self, signal: str) -> bool:
        return self.signal_types[signal] is SignalType.INPUT

    def is_input_edge(self, edge: SignalEdge) -> bool:
        return self.is_input_signal(edge.signal)

    # ------------------------------------------------------------------
    # states and codes
    # ------------------------------------------------------------------
    @property
    def states(self) -> List[State]:
        return self.ts.states

    @property
    def initial_state(self) -> State:
        return self.ts.initial_state

    @property
    def num_states(self) -> int:
        return self.ts.num_states

    def code(self, state: State) -> Code:
        return self.encoding[state]

    def code_str(self, state: State) -> str:
        """Human-readable code with ``*`` after excited signals, as in
        Figure 3 of the paper (e.g. ``"1*0 1"`` style strings)."""
        code = self.encoding[state]
        excited = {edge.signal for edge in self.enabled_edges(state)}
        parts = []
        for signal, value in zip(self.signals, code):
            star = "*" if signal in excited else ""
            parts.append(f"{value}{star}")
        return "".join(parts)

    def value(self, state: State, signal: str) -> int:
        return self.encoding[state][self._index[signal]]

    def enabled_edges(self, state: State) -> List[SignalEdge]:
        return self.ts.enabled_events(state)

    def enabled_noninput_edges(self, state: State) -> List[SignalEdge]:
        return [edge for edge in self.enabled_edges(state) if not self.is_input_edge(edge)]

    def is_excited(self, state: State, signal: str) -> bool:
        """True iff some transition of ``signal`` is enabled in ``state``."""
        return any(edge.signal == signal for edge in self.enabled_edges(state))

    def next_value(self, state: State, signal: str) -> int:
        """The value ``signal`` is heading to in ``state``.

        This is the implied value of the next-state function: the current
        value if the signal is stable, the complemented value if it is
        excited.  Well defined per *state*; CSC is exactly the condition
        that makes it well defined per *code* for non-input signals.
        """
        current = self.value(state, signal)
        return 1 - current if self.is_excited(state, signal) else current

    # ------------------------------------------------------------------
    # behavioural checks
    # ------------------------------------------------------------------
    def consistency_violations(self) -> List[str]:
        """Arcs whose label does not match the codes of their endpoints."""
        problems = []
        for source, edge, target in self.ts.transitions():
            source_code = self.encoding[source]
            target_code = self.encoding[target]
            position = self._index[edge.signal]
            if source_code[position] != edge.value_before():
                problems.append(
                    f"{edge} fired from state with {edge.signal}={source_code[position]}"
                )
            if target_code[position] != edge.value_after():
                problems.append(
                    f"{edge} led to state with {edge.signal}={target_code[position]}"
                )
            for signal, index in self._index.items():
                if signal != edge.signal and source_code[index] != target_code[index]:
                    problems.append(
                        f"{edge} changed unrelated signal {signal} "
                        f"({source_code[index]} -> {target_code[index]})"
                    )
        return problems

    def is_consistent(self) -> bool:
        return not self.consistency_violations()

    def is_deterministic(self) -> bool:
        return is_deterministic(self.ts)

    def is_commutative(self) -> bool:
        return is_commutative(self.ts)

    def is_output_persistent(self) -> bool:
        """True iff every non-input signal edge is persistent.

        Together with determinism and commutativity this guarantees a
        speed-independent implementation of the encoded TS (Section 3).
        """
        for event in self.ts.events:
            if isinstance(event, SignalEdge) and not self.is_input_edge(event):
                if not is_event_persistent(self.ts, event):
                    return False
        return True

    def speed_independence_report(self) -> Dict[str, bool]:
        return {
            "deterministic": self.is_deterministic(),
            "commutative": self.is_commutative(),
            "output_persistent": self.is_output_persistent(),
            "consistent": self.is_consistent(),
        }

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the engine cache.

        :mod:`repro.engine.caches` attaches memoized analysis results
        (bricks, conflict lists, the indexed search view) to the instance
        under ``_repro_cache``; they are derived data, can reference the
        parent graph of an insertion chain, and must not travel to the
        worker processes of the batch engine.
        """
        state = dict(self.__dict__)
        state.pop("_repro_cache", None)
        return state

    def indexed(self):
        """The canonical integer/bitset view of this graph.

        Convenience accessor for
        :func:`repro.core.indexed.indexed_state_graph`: the
        :class:`~repro.core.indexed.IndexedStateGraph` the core CSC
        pipeline computes on, built once per graph and cached by the
        engine (derived by index arithmetic for graphs produced by
        signal insertion).  Imported lazily — the stg layer itself does
        not depend on the core.
        """
        from repro.core.indexed import indexed_state_graph

        return indexed_state_graph(self)

    def copy(self) -> "StateGraph":
        return StateGraph(
            self.ts.copy(),
            list(self.signals),
            dict(self.signal_types),
            dict(self.encoding),
            self.name,
        )

    def restrict(self, keep: Iterable[State]) -> "StateGraph":
        keep_set = set(keep)
        sub_ts = self.ts.restrict(keep_set)
        sub_encoding = {s: c for s, c in self.encoding.items() if s in keep_set}
        return StateGraph(sub_ts, self.signals, self.signal_types, sub_encoding, self.name)

    def __repr__(self) -> str:
        return (
            f"StateGraph(name={self.name!r}, states={self.num_states}, "
            f"signals={len(self.signals)})"
        )


# ----------------------------------------------------------------------
# encoding inference
# ----------------------------------------------------------------------
def infer_encoding(
    ts: TransitionSystem,
    signals: Sequence[str],
    initial_values: Optional[Dict[str, int]] = None,
) -> Dict[State, Code]:
    """Compute the unique consistent binary encoding of a labelled TS.

    Every arc labelled ``a+`` forces ``a = 0`` at its source and ``a = 1``
    at its target, and leaves every other signal unchanged.  Values are
    propagated to a fixpoint; a contradiction means the underlying STG is
    not consistently labelled.  Signals whose value is not constrained on
    some states (e.g. signals that never switch) default to the value in
    ``initial_values`` or to 0.
    """
    initial_values = dict(initial_values or {})
    index = {signal: position for position, signal in enumerate(signals)}
    known: Dict[State, Dict[str, int]] = {state: {} for state in ts.states}

    # Seed facts from the arcs themselves.
    queue = deque()

    def assign(state: State, signal: str, value: int, reason: str) -> None:
        current = known[state].get(signal)
        if current is None:
            known[state][signal] = value
            queue.append((state, signal))
        elif current != value:
            raise InconsistentSTGError(
                f"signal {signal!r} forced to both {current} and {value} "
                f"in state {state!r} ({reason})"
            )

    arcs_by_state: Dict[State, List[Tuple[SignalEdge, State, int]]] = {
        state: [] for state in ts.states
    }
    for source, edge, target in ts.transitions():
        if not isinstance(edge, SignalEdge):
            raise TypeError(f"state-graph events must be SignalEdge, got {edge!r}")
        arcs_by_state[source].append((edge, target, +1))
        arcs_by_state[target].append((edge, source, -1))
        assign(source, edge.signal, edge.value_before(), f"source of {edge}")
        assign(target, edge.signal, edge.value_after(), f"target of {edge}")

    # Propagate: signals not switched by an arc keep their value across it.
    while queue:
        state, signal = queue.popleft()
        value = known[state][signal]
        for edge, other, _direction in arcs_by_state[state]:
            if edge.signal != signal:
                other_value = known[other].get(signal)
                if other_value is None:
                    assign(other, signal, value, f"propagated across {edge}")
                elif other_value != value:
                    raise InconsistentSTGError(
                        f"signal {signal!r} inconsistent across {edge}: "
                        f"{value} vs {other_value}"
                    )

    # Fill unconstrained values from initial_values / default 0, propagating
    # connected-component-wise is unnecessary: unconstrained means the value
    # never changes anywhere reachable, so a single constant suffices.
    encoding: Dict[State, Code] = {}
    for state in ts.states:
        values = []
        for signal in signals:
            value = known[state].get(signal)
            if value is None:
                value = initial_values.get(signal, 0)
            values.append(value)
        encoding[state] = tuple(values)

    # If explicit initial values were supplied, verify them on the initial state.
    if ts.initial_state is not None:
        for signal, value in initial_values.items():
            if signal in index:
                actual = encoding[ts.initial_state][index[signal]]
                if actual != value:
                    raise InconsistentSTGError(
                        f"declared initial value {signal}={value} contradicts the "
                        f"inferred value {actual}"
                    )
    return encoding


def build_state_graph(
    stg: STG,
    initial_values: Optional[Dict[str, int]] = None,
    max_states: Optional[int] = None,
) -> StateGraph:
    """Elaborate an STG into its binary-encoded state graph.

    Raises :class:`InconsistentSTGError` when the STG is not consistent and
    :class:`NotImplementedError` when it contains dummy transitions (dummy
    contraction is outside the scope of this reproduction).
    """
    if stg.dummy_transitions:
        raise NotImplementedError(
            "state-graph elaboration of STGs with dummy transitions is not supported"
        )
    result = build_reachability_graph(
        stg.net,
        max_markings=max_states,
        label=lambda name: stg.label_of(name).base(),
    )
    if not result.safe:
        raise InconsistentSTGError(
            f"the underlying Petri net of {stg.name!r} is not safe; the region-based "
            "encoding theory assumes safe STGs"
        )
    merged_initial = dict(stg.initial_values)
    if initial_values:
        merged_initial.update(initial_values)
    encoding = infer_encoding(result.graph, stg.signals, merged_initial)
    return StateGraph(
        ts=result.graph,
        signals=stg.signals,
        signal_types={s: stg.signal_types[s] for s in stg.signals},
        encoding=encoding,
        name=stg.name,
    )
