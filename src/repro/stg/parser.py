"""Parser for the ``.g`` (astg) STG exchange format used by SIS / petrify.

The format, in the fragment this library supports::

    # comments start with '#'
    .model name
    .inputs  a b
    .outputs c d
    .internal z
    .dummy   eps
    .graph
    a+ c+ p0        # arcs from a+ to c+ and from a+ to p0
    p0 b+
    .marking { p0 <a+,c+> }
    .capacity p0=2   # accepted and ignored (this library assumes safe nets)
    .end

Nodes appearing in ``.graph`` lines are transitions when they parse as a
signal edge of a declared signal (or are a declared dummy); every other
identifier is a place.  An arc directly between two transitions creates an
implicit place named ``<source,target>``, which is how such places are
referred to in ``.marking``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.stg.signals import SignalEdge, SignalType
from repro.stg.stg import STG


class GFormatError(ValueError):
    """Raised when a ``.g`` file cannot be parsed."""


_MARKING_TOKEN_RE = re.compile(r"(<[^>]*>|[^\s{}]+)")


def _strip_comment(line: str) -> str:
    position = line.find("#")
    if position >= 0:
        return line[:position]
    return line


def _tokenize_graph_line(line: str) -> List[str]:
    return line.split()


def parse_g(text: str, name: Optional[str] = None) -> STG:
    """Parse ``.g`` text into an :class:`~repro.stg.stg.STG`."""
    stg = STG(name or "stg")
    graph_lines: List[List[str]] = []
    marking_tokens: List[str] = []
    initial_values: Dict[str, int] = {}
    in_graph = False
    saw_end = False

    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith("."):
            in_graph = False
            directive, _, rest = line.partition(" ")
            directive = directive.lower()
            rest = rest.strip()
            if directive in (".model", ".name"):
                if rest:
                    stg.name = rest.split()[0]
            elif directive == ".inputs":
                for signal in rest.split():
                    stg.add_input(signal)
            elif directive == ".outputs":
                for signal in rest.split():
                    stg.add_output(signal)
            elif directive in (".internal", ".internals"):
                for signal in rest.split():
                    stg.add_internal(signal)
            elif directive == ".dummy":
                for dummy in rest.split():
                    stg.add_dummy_transition(dummy)
            elif directive == ".graph":
                in_graph = True
            elif directive == ".marking":
                marking_tokens.extend(_MARKING_TOKEN_RE.findall(rest))
            elif directive == ".initial":
                # ".initial state 0101" style lines: values follow the
                # declaration order of the signals.
                values = rest.split()[-1] if rest else ""
                for signal, char in zip(stg.signals, values):
                    if char in "01":
                        initial_values[signal] = int(char)
            elif directive in (".capacity", ".slowenv", ".level", ".outputs_root"):
                continue  # accepted and ignored
            elif directive == ".end":
                saw_end = True
                break
            else:
                raise GFormatError(f"unsupported directive: {directive!r}")
        elif in_graph:
            graph_lines.append(_tokenize_graph_line(line))
        else:
            raise GFormatError(f"unexpected line outside .graph section: {raw_line!r}")

    if not saw_end and not graph_lines:
        raise GFormatError("no .graph section found")

    _populate_graph(stg, graph_lines)
    _apply_marking(stg, marking_tokens)
    for signal, value in initial_values.items():
        stg.set_initial_value(signal, value)
    return stg


def _is_transition_token(stg: STG, token: str) -> bool:
    if stg.net.has_transition(token):
        return True
    if token in stg.dummy_transitions:
        return True
    if SignalEdge.is_edge_label(token):
        edge = SignalEdge.parse(token)
        return edge.signal in stg.signal_types and (
            stg.signal_types[edge.signal] is not SignalType.DUMMY
        )
    return False


def _populate_graph(stg: STG, graph_lines: List[List[str]]) -> None:
    # First pass: create all transition nodes so that place/transition
    # disambiguation of later arcs does not depend on line order.
    for tokens in graph_lines:
        for token in tokens:
            if _is_transition_token(stg, token) and not stg.net.has_transition(token):
                stg.add_transition(SignalEdge.parse(token))
    # Second pass: create places and arcs.
    for tokens in graph_lines:
        if len(tokens) < 2:
            raise GFormatError(f"graph line needs a source and at least one target: {tokens}")
        source = tokens[0]
        for target in tokens[1:]:
            stg.connect(source, target)


def _apply_marking(stg: STG, tokens: List[str]) -> None:
    marking: Dict[str, int] = {}
    for token in tokens:
        if token in ("{", "}"):
            continue
        count = 1
        if "=" in token and not token.startswith("<"):
            token, _, count_text = token.partition("=")
            count = int(count_text)
        if not stg.net.has_place(token):
            raise GFormatError(f"marked place {token!r} does not exist in the net")
        marking[token] = marking.get(token, 0) + count
    if marking:
        stg.net.set_initial_marking(marking)


def read_g_file(path: str) -> STG:
    """Parse a ``.g`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_g(handle.read())
