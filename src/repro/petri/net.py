"""The Petri-net data structure and the token game.

A Petri net is a quadruple ``N = (P, T, F, m0)`` (Section 2.1 of the
paper).  Arcs carry integer weights (the STG benchmarks only ever use
weight 1, which is also what the safeness-based theory assumes, but the
data structure does not restrict them).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

Place = Hashable
TransitionName = Hashable


class Marking:
    """An immutable multiset of tokens over places.

    Internally stored as a sorted tuple of ``(place, count)`` pairs with
    zero-count entries removed, which makes markings hashable and
    canonical so they can serve directly as transition-system states.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, tokens: Optional[Dict[Place, int]] = None) -> None:
        items = tokens or {}
        cleaned = {place: count for place, count in items.items() if count}
        for place, count in cleaned.items():
            if count < 0:
                raise ValueError(f"negative token count for place {place!r}")
        self._items: Tuple[Tuple[Place, int], ...] = tuple(
            sorted(cleaned.items(), key=lambda pair: repr(pair[0]))
        )
        self._hash = hash(self._items)

    # -- queries ---------------------------------------------------------
    def count(self, place: Place) -> int:
        for candidate, count in self._items:
            if candidate == place:
                return count
        return 0

    def __contains__(self, place: Place) -> bool:
        return self.count(place) > 0

    def places(self) -> List[Place]:
        return [place for place, _count in self._items]

    def items(self) -> Iterator[Tuple[Place, int]]:
        return iter(self._items)

    def as_dict(self) -> Dict[Place, int]:
        return dict(self._items)

    def is_safe(self) -> bool:
        return all(count <= 1 for _place, count in self._items)

    # -- arithmetic ------------------------------------------------------
    def add(self, deltas: Dict[Place, int]) -> "Marking":
        """A new marking with ``deltas`` applied (may raise on negatives)."""
        tokens = self.as_dict()
        for place, delta in deltas.items():
            tokens[place] = tokens.get(place, 0) + delta
        return Marking(tokens)

    # -- dunder ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Marking) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inside = ", ".join(
            f"{place}" if count == 1 else f"{place}:{count}"
            for place, count in self._items
        )
        return f"{{{inside}}}"


class PetriNet:
    """A place/transition net with weighted arcs and an initial marking."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[Place, None] = {}
        self._transitions: Dict[TransitionName, None] = {}
        # preset[t][p]  = weight of arc p -> t
        # postset[t][p] = weight of arc t -> p
        self._preset: Dict[TransitionName, Dict[Place, int]] = {}
        self._postset: Dict[TransitionName, Dict[Place, int]] = {}
        # place_post[p] = transitions consuming from p (for enabling updates)
        self._place_post: Dict[Place, Dict[TransitionName, int]] = {}
        self._place_pre: Dict[Place, Dict[TransitionName, int]] = {}
        self.initial_marking: Marking = Marking()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_place(self, place: Place, tokens: int = 0) -> Place:
        if place not in self._places:
            self._places[place] = None
            self._place_post[place] = {}
            self._place_pre[place] = {}
        if tokens:
            self.initial_marking = self.initial_marking.add({place: tokens})
        return place

    def add_transition(self, transition: TransitionName) -> TransitionName:
        if transition not in self._transitions:
            self._transitions[transition] = None
            self._preset[transition] = {}
            self._postset[transition] = {}
        return transition

    def add_arc(self, source: Hashable, target: Hashable, weight: int = 1) -> None:
        """Add an arc between a place and a transition (either direction)."""
        if weight <= 0:
            raise ValueError("arc weight must be positive")
        if source in self._places and target in self._transitions:
            self._preset[target][source] = self._preset[target].get(source, 0) + weight
            self._place_post[source][target] = self._preset[target][source]
        elif source in self._transitions and target in self._places:
            self._postset[source][target] = self._postset[source].get(target, 0) + weight
            self._place_pre[target][source] = self._postset[source][target]
        else:
            raise ValueError(
                f"arc must connect a place and a transition, got {source!r} -> {target!r}"
            )

    def set_initial_marking(self, tokens: Dict[Place, int]) -> None:
        for place in tokens:
            if place not in self._places:
                raise ValueError(f"unknown place in initial marking: {place!r}")
        self.initial_marking = Marking(tokens)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def places(self) -> List[Place]:
        return list(self._places)

    @property
    def transitions(self) -> List[TransitionName]:
        return list(self._transitions)

    @property
    def num_places(self) -> int:
        return len(self._places)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    @property
    def num_arcs(self) -> int:
        return sum(len(d) for d in self._preset.values()) + sum(
            len(d) for d in self._postset.values()
        )

    def preset(self, transition: TransitionName) -> Dict[Place, int]:
        """Input places of ``transition`` with arc weights."""
        return dict(self._preset[transition])

    def postset(self, transition: TransitionName) -> Dict[Place, int]:
        """Output places of ``transition`` with arc weights."""
        return dict(self._postset[transition])

    def place_preset(self, place: Place) -> Dict[TransitionName, int]:
        """Transitions producing into ``place``."""
        return dict(self._place_pre[place])

    def place_postset(self, place: Place) -> Dict[TransitionName, int]:
        """Transitions consuming from ``place``."""
        return dict(self._place_post[place])

    def has_place(self, place: Place) -> bool:
        return place in self._places

    def has_transition(self, transition: TransitionName) -> bool:
        return transition in self._transitions

    # ------------------------------------------------------------------
    # token game
    # ------------------------------------------------------------------
    def is_enabled(self, marking: Marking, transition: TransitionName) -> bool:
        return all(
            marking.count(place) >= weight
            for place, weight in self._preset[transition].items()
        )

    def enabled_transitions(self, marking: Marking) -> List[TransitionName]:
        return [t for t in self._transitions if self.is_enabled(marking, t)]

    def fire(self, marking: Marking, transition: TransitionName) -> Marking:
        """Fire ``transition`` from ``marking`` and return the new marking."""
        if not self.is_enabled(marking, transition):
            raise ValueError(f"transition {transition!r} is not enabled in {marking!r}")
        deltas: Dict[Place, int] = {}
        for place, weight in self._preset[transition].items():
            deltas[place] = deltas.get(place, 0) - weight
        for place, weight in self._postset[transition].items():
            deltas[place] = deltas.get(place, 0) + weight
        return marking.add(deltas)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "PetriNet":
        result = PetriNet(name or self.name)
        for place in self._places:
            result.add_place(place)
        for transition in self._transitions:
            result.add_transition(transition)
        for transition, arcs in self._preset.items():
            for place, weight in arcs.items():
                result.add_arc(place, transition, weight)
        for transition, arcs in self._postset.items():
            for place, weight in arcs.items():
                result.add_arc(transition, place, weight)
        result.initial_marking = self.initial_marking
        return result

    def __repr__(self) -> str:
        return (
            f"PetriNet(name={self.name!r}, places={self.num_places}, "
            f"transitions={self.num_transitions}, arcs={self.num_arcs})"
        )
