"""Petri-net synthesis from transition systems via regions.

This is the "reconstruction of the model in Petri net form" that lets
petrify hand the encoded specification back to the designer as an STG
instead of a flat state graph (a distinguishing feature the paper
emphasises in the abstract).  The construction follows the companion
ICCAD'95 work the paper cites as [3]:

* the *minimal pre-regions* of every event become candidate places;
* an event is *excitation closed* when the intersection of its pre-regions
  equals the set of states in which it is enabled; when some event is not,
  its label is split per excitation region and the analysis is repeated;
* redundant places are greedily removed as long as excitation closure is
  preserved;
* the flow relation follows the pre-/post-region relation and the initial
  marking puts a token in every region containing the initial state.

For excitation-closed (elementary-like) transition systems the
reachability graph of the synthesised net is isomorphic to the original
TS — exactly the Figure 1 relationship, which the Figure 1 benchmark
regenerates and checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.regions import crossing, minimal_preregions
from repro.core.excitation import excitation_regions, excitation_set
from repro.petri.net import PetriNet
from repro.petri.reachability import build_reachability_graph
from repro.stg.signals import SignalEdge, SignalType
from repro.stg.stg import STG
from repro.stg.state_graph import StateGraph
from repro.ts.transition_system import TransitionSystem
from repro.utils.ordered import stable_sorted

State = Hashable
Event = Hashable
Region = FrozenSet[State]


class SynthesisError(RuntimeError):
    """Raised when a transition system cannot be synthesised into a safe PN."""


@dataclass
class SynthesisResult:
    """A synthesised Petri net together with the synthesis bookkeeping."""

    net: PetriNet
    place_regions: Dict[str, Region]
    label_of: Dict[Hashable, Event] = field(default_factory=dict)
    split_events: Dict[Event, int] = field(default_factory=dict)

    @property
    def num_places(self) -> int:
        return self.net.num_places

    @property
    def num_transitions(self) -> int:
        return self.net.num_transitions


def _split_label(event: Event, occurrence: int) -> Event:
    """Label for the ``occurrence``-th excitation region of ``event``."""
    if isinstance(event, SignalEdge):
        return SignalEdge(event.signal, event.direction, occurrence)
    return (event, occurrence)


def _split_non_closed_events(
    ts: TransitionSystem, non_closed: List[Event]
) -> TransitionSystem:
    """Split each non-excitation-closed event into one label per ER."""
    result = TransitionSystem(ts.name)
    for state in ts.states:
        result.add_state(state)
    region_index: Dict[Event, List[FrozenSet[State]]] = {
        event: excitation_regions(ts, event) for event in non_closed
    }
    for source, event, target in ts.transitions():
        if event in region_index:
            regions = region_index[event]
            occurrence = next(
                position + 1
                for position, region in enumerate(regions)
                if source in region
            )
            result.add_transition(source, _split_label(event, occurrence), target)
        else:
            result.add_transition(source, event, target)
    if ts.initial_state is not None:
        result.set_initial(ts.initial_state)
    return result


def _excitation_closed(
    ts: TransitionSystem, event: Event, preregions: List[Region]
) -> bool:
    if not preregions:
        return False
    intersection = set(preregions[0])
    for region in preregions[1:]:
        intersection &= region
    return intersection == excitation_set(ts, event)


def _select_irredundant(
    ts: TransitionSystem, preregions_by_event: Dict[Event, List[Region]]
) -> List[Region]:
    """Greedy removal of places that are not needed for excitation closure."""
    all_regions: List[Region] = []
    for regions in preregions_by_event.values():
        for region in regions:
            if region not in all_regions:
                all_regions.append(region)

    def closed_with(selected: List[Region]) -> bool:
        for event, regions in preregions_by_event.items():
            kept = [r for r in regions if r in selected]
            if not kept:
                return False
            intersection = set(kept[0])
            for region in kept[1:]:
                intersection &= region
            if intersection != excitation_set(ts, event):
                return False
        return True

    selected = list(all_regions)
    # Try to remove the largest regions first (they constrain the least).
    for region in sorted(all_regions, key=len, reverse=True):
        trial = [r for r in selected if r != region]
        if trial and closed_with(trial):
            selected = trial
    return selected


def synthesize_net(
    ts: TransitionSystem,
    allow_label_splitting: bool = True,
    max_split_rounds: int = 3,
    region_budget: int = 20000,
) -> SynthesisResult:
    """Synthesise a safe Petri net whose reachability graph is ``ts``.

    Raises :class:`SynthesisError` when excitation closure cannot be
    achieved (even after label splitting, if enabled).
    """
    if ts.initial_state is None:
        raise ValueError("the transition system needs an initial state")

    working = ts
    split_counts: Dict[Event, int] = {}
    for _round in range(max_split_rounds + 1):
        preregions: Dict[Event, List[Region]] = {}
        non_closed: List[Event] = []
        for event in stable_sorted(working.events):
            regions = minimal_preregions(working, event, max_explored=region_budget)
            preregions[event] = regions
            if not _excitation_closed(working, event, regions):
                non_closed.append(event)
        if not non_closed:
            break
        if not allow_label_splitting:
            raise SynthesisError(
                f"events are not excitation closed: {non_closed!r} "
                "(label splitting disabled)"
            )
        for event in non_closed:
            split_counts[event] = len(excitation_regions(working, event))
        working = _split_non_closed_events(working, non_closed)
    else:
        raise SynthesisError(
            "excitation closure not reached after "
            f"{max_split_rounds} label-splitting rounds"
        )

    places = _select_irredundant(working, preregions)

    net = PetriNet(name=f"pn({ts.name})")
    place_regions: Dict[str, Region] = {}
    label_of: Dict[Hashable, Event] = {}

    for event in working.events:
        name = str(event)
        net.add_transition(name)
        label_of[name] = event

    for position, region in enumerate(places):
        place_name = f"p{position}"
        net.add_place(place_name)
        place_regions[place_name] = region
        for event in working.events:
            relation = crossing(working, region, event)
            if relation.exits:
                net.add_arc(place_name, str(event))
            elif relation.enters:
                net.add_arc(str(event), place_name)

    initial_places = {
        place_name: 1
        for place_name, region in place_regions.items()
        if working.initial_state in region
    }
    net.set_initial_marking(initial_places)

    return SynthesisResult(
        net=net,
        place_regions=place_regions,
        label_of=label_of,
        split_events=split_counts,
    )


def reachability_isomorphic_to(ts: TransitionSystem, result: SynthesisResult) -> bool:
    """Check the Figure-1 property: RG of the synthesised net ≅ original TS.

    Only meaningful when no label splitting occurred (split labels change
    the alphabet, giving bisimilarity rather than isomorphism).
    """
    from repro.ts.equivalence import deterministic_isomorphic

    reach = build_reachability_graph(result.net, label=lambda t: result.label_of[t])
    return deterministic_isomorphic(ts, reach.graph)


def synthesize_stg(sg: StateGraph, name: Optional[str] = None) -> STG:
    """Re-synthesise an STG from a (typically encoded) state graph.

    The resulting STG has the same signal declaration as ``sg`` (inserted
    state signals appear as internal signals) and its state graph is
    trace-equivalent to ``sg``.
    """
    result = synthesize_net(sg.ts)
    stg = STG(name or f"{sg.name}_resynth")
    for signal in sg.signals:
        stg.add_signal(signal, sg.signal_types[signal])

    # Transitions of the synthesised net are labelled with SignalEdge
    # objects (possibly indexed after label splitting).
    for transition_name, event in result.label_of.items():
        if not isinstance(event, SignalEdge):
            raise SynthesisError(
                f"state-graph events must be signal edges, got {event!r}"
            )
        stg.add_transition(event)

    for place_name in result.net.places:
        stg.add_place(place_name)
        for transition_name in result.net.place_postset(place_name):
            stg.net.add_arc(place_name, transition_name)
        for transition_name in result.net.place_preset(place_name):
            stg.net.add_arc(transition_name, place_name)

    stg.net.set_initial_marking(
        {place: count for place, count in result.net.initial_marking.items()}
    )
    for signal in sg.signals:
        stg.set_initial_value(signal, sg.value(sg.initial_state, signal))
    return stg
