"""Explicit reachability analysis of Petri nets.

The reachability graph (RG) of a net is the transition system whose states
are reachable markings and whose arcs are transition firings
(Section 2.1).  For the very large state spaces of Table 1 the symbolic
engine in ``repro.bdd.symbolic`` should be used instead; this explicit
builder is the workhorse for CSC solving, which needs the states anyway.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from repro.petri.net import Marking, PetriNet
from repro.ts.transition_system import TransitionSystem
from repro.utils.deadline import check_deadline


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when reachability exploration exceeds the requested bound."""


@dataclass
class ReachabilityResult:
    """Outcome of an explicit reachability exploration."""

    graph: TransitionSystem
    num_markings: int
    safe: bool
    deadlocks: List[Marking] = field(default_factory=list)


def build_reachability_graph(
    net: PetriNet,
    max_markings: Optional[int] = None,
    label: Optional[Callable[[Hashable], Hashable]] = None,
) -> ReachabilityResult:
    """Explore all markings reachable from the initial marking of ``net``.

    Parameters
    ----------
    net:
        The Petri net to explore.
    max_markings:
        Abort with :class:`StateSpaceLimitExceeded` when more markings than
        this are discovered.  ``None`` means unlimited.
    label:
        Optional relabelling applied to transition names before they are
        used as transition-system events (STGs map transition names to
        signal edges this way).
    """
    graph = TransitionSystem(name=f"rg({net.name})")
    initial = net.initial_marking
    graph.set_initial(initial)

    visited: Dict[Marking, None] = {initial: None}
    frontier = deque([initial])
    safe = initial.is_safe()
    deadlocks: List[Marking] = []

    while frontier:
        check_deadline()  # per-job wall-clock bound (repro.utils.deadline)
        marking = frontier.popleft()
        enabled = net.enabled_transitions(marking)
        if not enabled:
            deadlocks.append(marking)
        for transition in enabled:
            successor = net.fire(marking, transition)
            if not successor.is_safe():
                safe = False
            event = label(transition) if label is not None else transition
            graph.add_transition(marking, event, successor)
            if successor not in visited:
                visited[successor] = None
                if max_markings is not None and len(visited) > max_markings:
                    raise StateSpaceLimitExceeded(
                        f"more than {max_markings} reachable markings in {net.name}"
                    )
                frontier.append(successor)

    return ReachabilityResult(
        graph=graph,
        num_markings=len(visited),
        safe=safe,
        deadlocks=deadlocks,
    )
