"""Petri nets: places, transitions, token game, reachability, synthesis.

Signal Transition Graphs (``repro.stg``) are Petri nets whose transitions
are labelled with signal changes; the reachability graph of a Petri net is
a transition system (``repro.ts``).  The synthesis module re-derives a
Petri net from a transition system using minimal regions — the step the
paper relies on to hand the encoded specification back to the designer as
an STG rather than a flat state graph.
"""

from repro.petri.net import PetriNet, Marking
from repro.petri.reachability import ReachabilityResult, build_reachability_graph
from repro.petri.properties import is_safe, place_bounds

__all__ = [
    "PetriNet",
    "Marking",
    "ReachabilityResult",
    "build_reachability_graph",
    "is_safe",
    "place_bounds",
]
