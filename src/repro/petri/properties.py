"""Structural and behavioural properties of Petri nets."""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.petri.net import PetriNet
from repro.petri.reachability import build_reachability_graph

Place = Hashable


def place_bounds(net: PetriNet, max_markings: Optional[int] = None) -> Dict[Place, int]:
    """The maximum token count observed in each place over all reachable
    markings (exhaustive exploration)."""
    result = build_reachability_graph(net, max_markings=max_markings)
    bounds = {place: 0 for place in net.places}
    for marking in result.graph.states:
        for place, count in marking.items():
            if count > bounds.get(place, 0):
                bounds[place] = count
    return bounds


def is_safe(net: PetriNet, max_markings: Optional[int] = None) -> bool:
    """True iff no reachable marking puts more than one token in a place.

    Safeness is a prerequisite of the paper's completeness claim ("the
    method can solve CSC for any safe, consistent, output-persistent STG").
    """
    result = build_reachability_graph(net, max_markings=max_markings)
    return result.safe


def is_free_choice(net: PetriNet) -> bool:
    """Structural free-choice check.

    For every pair of transitions sharing an input place, the presets must
    coincide.  Not required by the paper's method but a useful structural
    diagnostic for benchmark STGs.
    """
    for place in net.places:
        consumers = list(net.place_postset(place))
        if len(consumers) <= 1:
            continue
        reference = net.preset(consumers[0])
        for transition in consumers[1:]:
            if net.preset(transition) != reference:
                return False
    return True


def has_source_and_sink_isolation(net: PetriNet) -> bool:
    """True iff every transition has at least one input and one output place.

    Transitions without inputs would be permanently enabled and make the
    reachability graph infinite; benchmark loaders use this as a sanity
    check after parsing.
    """
    for transition in net.transitions:
        if not net.preset(transition) or not net.postset(transition):
            return False
    return True
