"""Parameterised STG generators used by the benchmark library.

Every generator returns a safe, consistent :class:`~repro.stg.stg.STG`.
Two families are provided:

* *Input-preserving* controllers (``vme_controller``, ``sequencer``,
  ``duplicator_element``, ``mixed_controller``, ``handshake_wire_chain``):
  every CSC conflict can be resolved by inserting state signals whose
  transitions are triggered by (and only delay) output events, which is
  the regime the paper's method targets.

* *Toggle-style* controllers (``toggle_element``, ``parallel_toggles``,
  ``independent_toggles``, ``ripple_counter``): divide-by-two behaviour
  whose internal state must change across input-only portions of the
  cycle.  These have no input-preserving solution at all (the circuit
  would race its own environment); they are kept because they are the
  classic stress cases for state-space size (Table 1) and because they
  exercise the solver's ``allow_input_delay`` mode — the "changes in the
  specification" the paper says competing tools had to resort to.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.stg.stg import STG

Arc = Tuple[str, str]


def vme_controller() -> STG:
    """The classic VME bus controller (read cycle).

    Inputs ``dsr`` / ``ldtack``, outputs ``lds`` / ``d`` / ``dtack``.  The
    textbook example of a specification with a single CSC conflict that
    needs one inserted state signal.
    """
    arcs: List[Arc] = [
        ("dsr+", "lds+"),
        ("ldtack-", "lds+"),
        ("lds+", "ldtack+"),
        ("ldtack+", "d+"),
        ("d+", "dtack+"),
        ("dtack+", "dsr-"),
        ("dsr-", "d-"),
        ("d-", "dtack-"),
        ("d-", "lds-"),
        ("dtack-", "dsr+"),
        ("lds-", "ldtack-"),
    ]
    return STG.from_arcs(
        "vme",
        inputs=["dsr", "ldtack"],
        outputs=["lds", "d", "dtack"],
        arcs=arcs,
        marking=[("dtack-", "dsr+"), ("ldtack-", "lds+")],
    )


def toggle_element(name: str = "toggle", input_signal: str = "a", output_signal: str = "b") -> STG:
    """A divide-by-two element: the output toggles once per input cycle.

    The six-state cycle ``a+ b+ a- a+ b- a-`` is the smallest specification
    with CSC conflicts.  Because the internal state would have to change
    between two consecutive *input* transitions, the conflicts cannot be
    solved without delaying the environment — the solver's strict mode
    correctly reports failure, the relaxed mode solves it.
    """
    a, b = input_signal, output_signal
    arcs: List[Arc] = [
        (f"{a}+/1", f"{b}+"),
        (f"{b}+", f"{a}-/1"),
        (f"{a}-/1", f"{a}+/2"),
        (f"{a}+/2", f"{b}-"),
        (f"{b}-", f"{a}-/2"),
        (f"{a}-/2", f"{a}+/1"),
    ]
    return STG.from_arcs(
        name,
        inputs=[a],
        outputs=[b],
        arcs=arcs,
        marking=[(f"{a}-/2", f"{a}+/1")],
    )


def duplicator_element(name: str = "duplicator") -> STG:
    """One input handshake produces two acknowledged output handshakes.

    The output ``b`` performs two full handshakes (acknowledged by the
    input ``c``) per cycle of the input ``a``, and a ``done`` output ``d``
    closes the cycle.  States inside the two ``b`` handshakes share codes
    but enable different behaviour — CSC conflicts that are solvable with
    output-triggered state signals.
    """
    arcs: List[Arc] = [
        ("a+", "b+/1"),
        ("b+/1", "c+/1"),
        ("c+/1", "b-/1"),
        ("b-/1", "c-/1"),
        ("c-/1", "b+/2"),
        ("b+/2", "c+/2"),
        ("c+/2", "b-/2"),
        ("b-/2", "c-/2"),
        ("c-/2", "d+"),
        ("d+", "a-"),
        ("a-", "d-"),
        ("d-", "a+"),
    ]
    return STG.from_arcs(
        name,
        inputs=["a", "c"],
        outputs=["b", "d"],
        arcs=arcs,
        marking=[("d-", "a+")],
    )


def sequencer(num_outputs: int, name: str = "") -> STG:
    """One input handshake triggers ``num_outputs`` acknowledged handshakes.

    Output ``b_i`` is acknowledged by input ``c_i``; a ``done`` output ``d``
    closes the cycle.  All the "between two handshakes" states share the
    same code, giving a ladder of CSC conflicts that the encoder resolves
    with roughly ``log2(num_outputs)`` state signals, each triggered by
    output transitions only.
    """
    if num_outputs < 1:
        raise ValueError("a sequencer needs at least one output")
    name = name or f"seq{num_outputs}"
    outputs = [f"b{i}" for i in range(1, num_outputs + 1)]
    acks = [f"c{i}" for i in range(1, num_outputs + 1)]
    events: List[str] = ["a+"]
    for signal, ack in zip(outputs, acks):
        events.extend([f"{signal}+", f"{ack}+", f"{signal}-", f"{ack}-"])
    events.extend(["d+", "a-", "d-"])
    arcs = [(events[i], events[i + 1]) for i in range(len(events) - 1)]
    arcs.append(("d-", "a+"))
    return STG.from_arcs(
        name,
        inputs=["a"] + acks,
        outputs=outputs + ["d"],
        arcs=arcs,
        marking=[("d-", "a+")],
    )


def parallel_toggles(num_branches: int, name: str = "") -> STG:
    """A fork/join of ``num_branches`` concurrently toggling outputs.

    Phase one raises every output concurrently, phase two lowers them; any
    two interleavings that have flipped the same subset of outputs share a
    code but enable different output transitions, so the number of CSC
    conflict pairs grows with the (exponential) number of states — the
    high-concurrency stress case of Table 1.  Like every toggle, it is
    only solvable in ``allow_input_delay`` mode.
    """
    if num_branches < 1:
        raise ValueError("need at least one branch")
    name = name or f"par{num_branches}"
    outputs = [f"b{i}" for i in range(1, num_branches + 1)]
    arcs: List[Arc] = []
    for signal in outputs:
        arcs.append(("a+/1", f"{signal}+"))
        arcs.append((f"{signal}+", "a-/1"))
        arcs.append(("a+/2", f"{signal}-"))
        arcs.append((f"{signal}-", "a-/2"))
    arcs.append(("a-/1", "a+/2"))
    arcs.append(("a-/2", "a+/1"))
    return STG.from_arcs(
        name,
        inputs=["a"],
        outputs=outputs,
        arcs=arcs,
        marking=[("a-/2", "a+/1")],
    )


def independent_toggles(num_stages: int, name: str = "") -> STG:
    """``num_stages`` independent toggle elements in one specification.

    The state space is the product of the component state spaces (6^n
    states), which makes this the substitute for the very large ``pipe``
    benchmarks of Table 1: massive concurrency between unrelated
    handshakes, with every component contributing its own CSC conflicts.
    """
    if num_stages < 1:
        raise ValueError("need at least one stage")
    name = name or f"toggles{num_stages}"
    marking: List[Tuple[str, str]] = []
    arcs: List[Arc] = []
    inputs, outputs = [], []
    for index in range(1, num_stages + 1):
        a, b = f"a{index}", f"b{index}"
        inputs.append(a)
        outputs.append(b)
        arcs.extend(
            [
                (f"{a}+/1", f"{b}+"),
                (f"{b}+", f"{a}-/1"),
                (f"{a}-/1", f"{a}+/2"),
                (f"{a}+/2", f"{b}-"),
                (f"{b}-", f"{a}-/2"),
                (f"{a}-/2", f"{a}+/1"),
            ]
        )
        marking.append((f"{a}-/2", f"{a}+/1"))
    return STG.from_arcs(name, inputs=inputs, outputs=outputs, arcs=arcs, marking=marking)


def pipeline(num_stages: int, name: str = "") -> STG:
    """A chain of ``num_stages`` toggle stages coupled like a pipeline.

    Each stage is the six-state toggle cycle of :func:`toggle_element`
    (input ``a_i``, output ``b_i``); neighbouring stages are coupled in
    both directions — forward, stage ``i+1``'s rises are triggered by
    stage ``i``'s output edges (``b_i+ -> a_{i+1}+/1``,
    ``b_i- -> a_{i+1}+/2``), and backward, stage ``i``'s rises wait for
    stage ``i+1`` to consume the previous item (``a_{i+1}+/1 -> a_i+/2``,
    ``a_{i+1}+/2 -> a_i+/1``).  The forward arcs make data flow down the
    chain, the backward arcs provide the bounded-slack back-pressure
    that keeps the net safe.  Unlike :func:`independent_toggles` (whose
    stages never interact) the stages here genuinely overlap like a
    micropipeline's control, while still growing an exponential state
    space — the coupled substitute for the very large ``pipe``
    benchmarks of Table 1.  Toggles have no input-preserving solution,
    so CSC solving needs ``allow_input_delay`` mode.
    """
    if num_stages < 1:
        raise ValueError("need at least one stage")
    name = name or f"pipeline{num_stages}"
    inputs, outputs = [], []
    arcs: List[Arc] = []
    marking: List[Tuple[str, str]] = []
    for index in range(1, num_stages + 1):
        a, b = f"a{index}", f"b{index}"
        inputs.append(a)
        outputs.append(b)
        arcs.extend(
            [
                (f"{a}+/1", f"{b}+"),
                (f"{b}+", f"{a}-/1"),
                (f"{a}-/1", f"{a}+/2"),
                (f"{a}+/2", f"{b}-"),
                (f"{b}-", f"{a}-/2"),
                (f"{a}-/2", f"{a}+/1"),
            ]
        )
        marking.append((f"{a}-/2", f"{a}+/1"))
        if index > 1:
            prev_b, prev_a = f"b{index - 1}", f"a{index - 1}"
            arcs.extend(
                [
                    (f"{prev_b}+", f"{a}+/1"),
                    (f"{prev_b}-", f"{a}+/2"),
                    (f"{a}+/1", f"{prev_a}+/2"),
                    (f"{a}+/2", f"{prev_a}+/1"),
                ]
            )
            # One token of slack on the second back-pressure place: stage i
            # may start its first cycle before stage i+1 ever fires (the
            # first place gets its token naturally, because ``a_{i+1}+/1``
            # only waits for ``b_i+`` and fires before ``a_i+/2`` needs it).
            marking.append((f"{a}+/2", f"{prev_a}+/1"))
    return STG.from_arcs(name, inputs=inputs, outputs=outputs, arcs=arcs, marking=marking)


def ripple_counter(num_bits: int, name: str = "") -> STG:
    """An asynchronous ripple (modulo ``2**num_bits``) counter.

    The input handshake ``a`` clocks the counter; output bit ``b1`` toggles
    every cycle, ``b2`` every two cycles, and so on.  The specification is
    a single large cycle whose states repeat codes massively — the
    ``mod-4 counter`` and ``divider`` benchmarks of Table 2.  Counters are
    toggles, so state signals necessarily interleave with input
    transitions (``allow_input_delay`` mode).
    """
    if num_bits < 1:
        raise ValueError("need at least one bit")
    name = name or f"ripple{num_bits}"
    outputs = [f"b{i}" for i in range(1, num_bits + 1)]
    occurrence: Dict[str, int] = {}

    def fresh(event: str) -> str:
        occurrence[event] = occurrence.get(event, 0) + 1
        return f"{event}/{occurrence[event]}"

    events: List[str] = []
    bits = [0] * num_bits
    for _cycle in range(2 ** num_bits):
        events.append(fresh("a+"))
        # Ripple: toggle bit 1; carry into the next bit on a 1 -> 0 flip.
        position = 0
        while position < num_bits:
            bits[position] ^= 1
            sign = "+" if bits[position] else "-"
            events.append(fresh(f"b{position + 1}{sign}"))
            if bits[position] == 1:
                break
            position += 1
        events.append(fresh("a-"))
    arcs = [(events[i], events[i + 1]) for i in range(len(events) - 1)]
    arcs.append((events[-1], events[0]))
    return STG.from_arcs(
        name,
        inputs=["a"],
        outputs=outputs,
        arcs=arcs,
        marking=[(events[-1], events[0])],
    )


def handshake_wire_chain(num_stages: int, name: str = "") -> STG:
    """A chain of fully coupled pass-through handshake stages.

    Every stage simply forwards the four-phase handshake, so the
    specification satisfies CSC already; it is used as a control case
    (the solver must recognise there is nothing to do) and for parser /
    synthesis round-trip tests.
    """
    if num_stages < 1:
        raise ValueError("need at least one stage")
    name = name or f"wires{num_stages}"
    signals = [f"r{i}" for i in range(num_stages + 1)]
    arcs: List[Arc] = []
    for i in range(num_stages):
        arcs.append((f"{signals[i]}+", f"{signals[i + 1]}+"))
        arcs.append((f"{signals[i]}-", f"{signals[i + 1]}-"))
    arcs.append((f"{signals[-1]}+", f"{signals[0]}-"))
    arcs.append((f"{signals[-1]}-", f"{signals[0]}+"))
    return STG.from_arcs(
        name,
        inputs=[signals[0]],
        outputs=signals[1:],
        arcs=arcs,
        marking=[(f"{signals[-1]}-", f"{signals[0]}+")],
    )


def mixed_controller(
    num_parallel: int,
    num_sequential: int,
    name: str = "",
) -> STG:
    """A controller mixing concurrent and sequential acknowledged handshakes.

    On each cycle of the input ``a``, the controller performs
    ``num_parallel`` concurrent output handshakes (``p_i`` acknowledged by
    input ``q_i``) and, concurrently with them, a chain of
    ``num_sequential`` output handshakes (``s_j`` acknowledged by ``t_j``);
    when everything completes it raises the ``done`` output ``d``.  The
    sequencer chain and the fork/join both contribute CSC conflicts, the
    parallel branches contribute exponential state growth, and every
    conflict is resolvable with output-triggered state signals — the
    structural stand-in for the mid-size industrial controllers of
    Table 2 (``master-read``, ``mmu``, ``nak-pa``, …).
    """
    if num_parallel < 0 or num_sequential < 0 or num_parallel + num_sequential == 0:
        raise ValueError("the controller needs at least one output")
    name = name or f"mixed_p{num_parallel}_s{num_sequential}"
    parallel = [f"p{i}" for i in range(1, num_parallel + 1)]
    parallel_acks = [f"q{i}" for i in range(1, num_parallel + 1)]
    sequential = [f"s{j}" for j in range(1, num_sequential + 1)]
    sequential_acks = [f"t{j}" for j in range(1, num_sequential + 1)]
    arcs: List[Arc] = []

    for signal, ack in zip(parallel, parallel_acks):
        arcs.append(("a+", f"{signal}+"))
        arcs.append((f"{signal}+", f"{ack}+"))
        arcs.append((f"{ack}+", f"{signal}-"))
        arcs.append((f"{signal}-", f"{ack}-"))
        arcs.append((f"{ack}-", "d+"))

    if sequential:
        chain: List[str] = []
        for signal, ack in zip(sequential, sequential_acks):
            chain.extend([f"{signal}+", f"{ack}+", f"{signal}-", f"{ack}-"])
        arcs.append(("a+", chain[0]))
        for left, right in zip(chain, chain[1:]):
            arcs.append((left, right))
        arcs.append((chain[-1], "d+"))

    if not parallel and not sequential:
        arcs.append(("a+", "d+"))

    arcs.append(("d+", "a-"))
    arcs.append(("a-", "d-"))
    arcs.append(("d-", "a+"))

    return STG.from_arcs(
        name,
        inputs=["a"] + parallel_acks + sequential_acks,
        outputs=parallel + sequential + ["d"],
        arcs=arcs,
        marking=[("d-", "a+")],
    )
