"""The named benchmark suites used by the Table 1 and Table 2 harnesses.

The original 1996 suite is not redistributable, so each name is mapped to
a structurally analogous specification built by the generators in
:mod:`repro.bench_stg.generators` (see DESIGN.md, "Substitutions").  The
mapping keeps the *character* of each benchmark — sequencing-dominated
controllers map to sequencers, concurrency-dominated ones to mixed or
parallel controllers, counters to ripple counters — so that the
comparisons the paper makes (petrify-style vs ASSASSIN-style encoding,
small vs very large state spaces) exercise the same code paths.

Each case records how it is meant to be run:

* ``mode`` — ``"strict"`` benchmarks are solvable without delaying input
  transitions (the regime of the paper); ``"relaxed"`` benchmarks are
  toggle/counter behaviours that have no input-preserving solution and are
  run with ``allow_input_delay=True``.
* ``solve`` — whether the table harness attempts CSC solving (very large
  Table 1 entries are only counted, explicitly or symbolically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.bench_stg import generators as gen
from repro.core.search import SearchSettings
from repro.core.solver import SolverSettings
from repro.stg.stg import STG


@dataclass(frozen=True)
class BenchmarkCase:
    """One row of a benchmark table."""

    name: str
    builder: Callable[[], STG]
    description: str
    table: str  # "table1" or "table2"
    mode: str = "strict"  # "strict" (input-preserving) or "relaxed"
    solve: bool = True  # attempt CSC solving in the harness
    explicit_ok: bool = True  # False: count states symbolically only
    #: ``solve=False`` rows the *symbolic* engines should still solve:
    #: their conflict core is too large for the explicit harness regime
    #: but the BDD-space insertion path (``mode="symbolic-insert"``)
    #: handles them, so the suite keeps their signal budget.
    symbolic_solve: bool = False
    #: Frontier width for the symbolic solve of this case.  Block
    #: evaluations cost far more in BDD space than in the indexed
    #: explicit kernel, so symbolic-scale rows pin the narrowest width
    #: the explicit twin proves sufficient (same insertions found).
    symbolic_frontier_width: Optional[int] = None

    def build(self) -> STG:
        stg = self.builder()
        stg.name = self.name
        return stg

    def solver_settings(self, frontier_width: int = 16) -> SolverSettings:
        """Solver settings appropriate for this case."""
        return SolverSettings(
            search=SearchSettings(
                frontier_width=frontier_width,
                max_validity_checks=100,
                max_merge_candidates=32,
                allow_input_delay=(self.mode == "relaxed"),
            )
        )


def _case(name, builder, description, table, mode="strict", solve=True, explicit_ok=True, **kwargs):
    return BenchmarkCase(name, builder, description, table, mode, solve, explicit_ok, **kwargs)


# ----------------------------------------------------------------------
# Table 2: the 24-row comparison against the ASSASSIN-style baseline
# ----------------------------------------------------------------------
TABLE2_CASES: List[BenchmarkCase] = [
    _case("nak-pa", lambda: gen.mixed_controller(1, 2), "handshake controller, 1 concurrent + 2 sequential handshakes", "table2"),
    _case("ram-read-sbuf", lambda: gen.mixed_controller(2, 1), "read-buffer controller analogue", "table2"),
    _case("sbuf-ram-write", lambda: gen.mixed_controller(1, 3), "write-buffer controller analogue", "table2"),
    _case("sbuf-read-ctl", lambda: gen.sequencer(3), "three-stage read sequencer", "table2"),
    _case("mux2", lambda: gen.mixed_controller(2, 2), "two-way multiplexer controller analogue", "table2"),
    _case("postoffice", lambda: gen.mixed_controller(1, 4), "routing controller analogue", "table2"),
    _case("duplicator", gen.duplicator_element, "one input handshake, two output handshakes", "table2"),
    _case("specseq4", lambda: gen.sequencer(4), "four-stage sequencer", "table2"),
    _case("seqmix", lambda: gen.mixed_controller(0, 4), "purely sequential four-stage controller", "table2"),
    _case("seq8", lambda: gen.sequencer(8), "eight-stage sequencer", "table2"),
    _case("trcv-bm", lambda: gen.mixed_controller(1, 5), "transceiver controller analogue", "table2"),
    _case("tsend-bm", lambda: gen.mixed_controller(0, 5), "transmitter controller analogue", "table2"),
    _case("ircv-bm", lambda: gen.sequencer(6), "receiver controller analogue", "table2"),
    _case("mod4-counter", lambda: gen.ripple_counter(2), "modulo-4 ripple counter", "table2", mode="relaxed"),
    _case("master-read", lambda: gen.mixed_controller(1, 6), "bus master read controller analogue", "table2"),
    _case("mmu", lambda: gen.mixed_controller(1, 5), "memory-management controller analogue", "table2"),
    _case("mr0", lambda: gen.mixed_controller(1, 4), "master-read variant", "table2"),
    _case("ir", lambda: gen.sequencer(5), "instruction-register sequencer analogue", "table2"),
    _case("mmu0", lambda: gen.mixed_controller(0, 5), "mmu variant 0", "table2"),
    _case("mmu1", lambda: gen.mixed_controller(2, 1), "mmu variant 1", "table2"),
    _case("par4", lambda: gen.parallel_toggles(4), "four concurrently toggling outputs", "table2", mode="relaxed"),
    _case("divider8", lambda: gen.ripple_counter(3), "divide-by-eight ripple counter", "table2", mode="relaxed"),
    _case("vme2int", gen.vme_controller, "VME bus controller (read cycle)", "table2"),
    _case("combuf2", lambda: gen.mixed_controller(1, 1), "two-slot communication buffer analogue", "table2"),
]


# ----------------------------------------------------------------------
# Table 1: STGs with very large state spaces
# ----------------------------------------------------------------------
TABLE1_CASES: List[BenchmarkCase] = [
    _case("master-read", lambda: gen.mixed_controller(2, 2), "master-read analogue with two concurrent branches", "table1"),
    _case("adfast", lambda: gen.mixed_controller(1, 6), "A/D converter controller analogue", "table1"),
    _case("par8", lambda: gen.parallel_toggles(8), "eight concurrently toggling outputs", "table1", mode="relaxed", solve=False),
    _case("par16", lambda: gen.parallel_toggles(16), "sixteen concurrently toggling outputs", "table1", mode="relaxed", solve=False, explicit_ok=False),
    _case("par24", lambda: gen.parallel_toggles(24), "twenty-four concurrently toggling outputs", "table1", mode="relaxed", solve=False, explicit_ok=False),
    _case("pipe8", lambda: gen.independent_toggles(8), "eight independent toggle stages (pipeline analogue)", "table1", mode="relaxed", solve=False, explicit_ok=False),
    _case("pipe16", lambda: gen.independent_toggles(16), "sixteen independent toggle stages (pipeline analogue)", "table1", mode="relaxed", solve=False, explicit_ok=False),
    _case("pipe24", lambda: gen.independent_toggles(24), "twenty-four independent toggle stages (pipeline analogue)", "table1", mode="relaxed", solve=False, explicit_ok=False),
    _case("pipeline3", lambda: gen.pipeline(3), "three coupled pipeline toggle stages", "table1", mode="relaxed"),
    _case("pipeline4", lambda: gen.pipeline(4), "four coupled pipeline toggle stages", "table1", mode="relaxed", solve=False, symbolic_solve=True, symbolic_frontier_width=2),
    _case("pipeline8", lambda: gen.pipeline(8), "eight coupled pipeline toggle stages", "table1", mode="relaxed", solve=False, explicit_ok=False),
    _case("pipeline12", lambda: gen.pipeline(12), "twelve coupled pipeline toggle stages", "table1", mode="relaxed", solve=False, explicit_ok=False),
]


_ALL_CASES: Dict[str, BenchmarkCase] = {}
for _collection in (TABLE2_CASES, TABLE1_CASES):
    for _entry in _collection:
        _ALL_CASES.setdefault(f"{_entry.table}:{_entry.name}", _entry)


def benchmark_names(table: Optional[str] = None) -> List[str]:
    """Names of the available benchmarks, optionally filtered by table."""
    cases = TABLE1_CASES + TABLE2_CASES
    if table is not None:
        cases = [case for case in cases if case.table == table]
    return [case.name for case in cases]


def get_case(name: str, table: str = "table2") -> BenchmarkCase:
    """Look up a benchmark case by name."""
    key = f"{table}:{name}"
    if key not in _ALL_CASES:
        available = ", ".join(sorted(_ALL_CASES))
        raise KeyError(f"unknown benchmark {key!r}; available: {available}")
    return _ALL_CASES[key]


def load_benchmark(name: str, table: str = "table2") -> STG:
    """Build the STG of a named benchmark."""
    return get_case(name, table).build()
