"""Benchmark STGs: named controllers and scalable generators.

The original 1996 benchmark suite (``nak-pa``, ``master-read``, ``mmu``,
``pipe16`` …) is not redistributable and most of its ``.g`` sources are
not publicly archived; this package provides (a) classic controllers whose
structure is public knowledge (the VME bus controller, toggles,
duplicators, sequencers, ripple counters) and (b) parameterised generators
that produce structurally analogous specifications — handshake controllers
with tunable concurrency and guaranteed CSC conflicts — which are mapped
to the benchmark names used in the Table 1 / Table 2 reproductions (see
EXPERIMENTS.md for the exact mapping and the substitution rationale).
"""

from repro.bench_stg.generators import (
    vme_controller,
    toggle_element,
    duplicator_element,
    sequencer,
    parallel_toggles,
    independent_toggles,
    ripple_counter,
    handshake_wire_chain,
    mixed_controller,
)
from repro.bench_stg.library import (
    BenchmarkCase,
    TABLE1_CASES,
    TABLE2_CASES,
    benchmark_names,
    load_benchmark,
)

__all__ = [
    "vme_controller",
    "toggle_element",
    "duplicator_element",
    "sequencer",
    "parallel_toggles",
    "independent_toggles",
    "ripple_counter",
    "handshake_wire_chain",
    "mixed_controller",
    "BenchmarkCase",
    "TABLE1_CASES",
    "TABLE2_CASES",
    "benchmark_names",
    "load_benchmark",
]
