"""Transition systems: the semantic substrate of the whole library.

A *transition system* (TS) is an arc-labelled directed graph
``(S, E, T, s0)`` with states ``S``, events ``E``, transitions
``T ⊆ S × E × S`` and an initial state ``s0`` (Section 2.1 of the paper).
State graphs of Signal Transition Graphs, reachability graphs of Petri
nets and the encoded specifications produced by signal insertion are all
transition systems.
"""

from repro.ts.transition_system import TransitionSystem
from repro.ts.properties import (
    is_commutative,
    is_deterministic,
    is_event_persistent,
    persistent_events,
    is_weakly_connected,
)
from repro.ts.equivalence import deterministic_isomorphic, language_equivalent

__all__ = [
    "TransitionSystem",
    "is_deterministic",
    "is_commutative",
    "is_event_persistent",
    "persistent_events",
    "is_weakly_connected",
    "deterministic_isomorphic",
    "language_equivalent",
]
