"""Equivalence checks between transition systems.

Two checks are provided:

* :func:`deterministic_isomorphic` — label-preserving isomorphism between
  deterministic, reachable transition systems.  Used to reproduce the
  Figure-1 claim that the reachability graph of the synthesised Petri net
  is isomorphic to the original TS.
* :func:`language_equivalent` — trace (language) equivalence, optionally
  hiding a set of events.  This is requirement (1) that the paper places
  on the state-encoding process: the encoded specification must be trace
  equivalent to the original one once the inserted state signals are
  abstracted away.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Hashable, Iterable, Set, Tuple

from repro.ts.transition_system import TransitionSystem

Event = Hashable


def deterministic_isomorphic(first: TransitionSystem, second: TransitionSystem) -> bool:
    """Label-preserving isomorphism of deterministic reachable TSs.

    Both systems must have an initial state.  The check walks both systems
    in lock-step from their initial states, building a bijection between
    states.  For deterministic systems this is sound and complete on the
    reachable parts.
    """
    if first.initial_state is None or second.initial_state is None:
        raise ValueError("both transition systems need an initial state")

    mapping = {first.initial_state: second.initial_state}
    reverse = {second.initial_state: first.initial_state}
    frontier = deque([first.initial_state])
    visited = {first.initial_state}

    while frontier:
        state_a = frontier.popleft()
        state_b = mapping[state_a]
        succ_a = {event: target for event, target in first.successors(state_a)}
        succ_b = {event: target for event, target in second.successors(state_b)}
        if set(succ_a) != set(succ_b):
            return False
        for event, target_a in succ_a.items():
            target_b = succ_b[event]
            if target_a in mapping:
                if mapping[target_a] != target_b:
                    return False
            elif target_b in reverse:
                return False
            else:
                mapping[target_a] = target_b
                reverse[target_b] = target_a
            if target_a not in visited:
                visited.add(target_a)
                frontier.append(target_a)

    reachable_a = first.reachable_states()
    reachable_b = second.reachable_states()
    return len(reachable_a) == len(reachable_b) == len(mapping)


def _closure(
    ts: TransitionSystem, states: Iterable, hidden: Set[Event]
) -> FrozenSet:
    """States reachable from ``states`` by firing only hidden events."""
    result = set(states)
    frontier = deque(result)
    while frontier:
        state = frontier.popleft()
        for event, target in ts.successors(state):
            if event in hidden and target not in result:
                result.add(target)
                frontier.append(target)
    return frozenset(result)


def _visible_enabled(ts: TransitionSystem, subset: FrozenSet, hidden: Set[Event]):
    events = set()
    for state in subset:
        for event, _target in ts.successors(state):
            if event not in hidden:
                events.add(event)
    return events


def _visible_step(
    ts: TransitionSystem, subset: FrozenSet, event: Event, hidden: Set[Event]
) -> FrozenSet:
    targets = set()
    for state in subset:
        for candidate, target in ts.successors(state):
            if candidate == event:
                targets.add(target)
    return _closure(ts, targets, hidden)


def language_equivalent(
    first: TransitionSystem,
    second: TransitionSystem,
    hidden: Iterable[Event] = (),
) -> bool:
    """Trace equivalence after hiding ``hidden`` events.

    Both systems are determinised on the fly with the classical subset
    construction, treating hidden events as silent moves.  Suitable for
    the moderately sized state graphs used in tests and examples; the
    worst case is exponential, as for any language-equivalence check.
    """
    if first.initial_state is None or second.initial_state is None:
        raise ValueError("both transition systems need an initial state")
    hidden_set = set(hidden)

    start_a = _closure(first, [first.initial_state], hidden_set)
    start_b = _closure(second, [second.initial_state], hidden_set)
    visited: Set[Tuple[FrozenSet, FrozenSet]] = {(start_a, start_b)}
    frontier = deque([(start_a, start_b)])

    while frontier:
        subset_a, subset_b = frontier.popleft()
        enabled_a = _visible_enabled(first, subset_a, hidden_set)
        enabled_b = _visible_enabled(second, subset_b, hidden_set)
        if enabled_a != enabled_b:
            return False
        for event in enabled_a:
            next_a = _visible_step(first, subset_a, event, hidden_set)
            next_b = _visible_step(second, subset_b, event, hidden_set)
            pair = (next_a, next_b)
            if pair not in visited:
                visited.add(pair)
                frontier.append(pair)
    return True
