"""The :class:`TransitionSystem` data structure.

States and events may be arbitrary hashable objects.  Internally the class
keeps successor, predecessor and per-event adjacency maps so that the
region and insertion algorithms (which constantly ask "which transitions
are labelled with event *e*?" and "which transitions enter this set of
states?") run in time proportional to the answers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

State = Hashable
Event = Hashable
Transition = Tuple[State, Event, State]


class TransitionSystem:
    """An arc-labelled directed graph with a distinguished initial state."""

    def __init__(self, name: str = "ts") -> None:
        self.name = name
        self.initial_state: Optional[State] = None
        self._succ: Dict[State, List[Tuple[Event, State]]] = {}
        self._pred: Dict[State, List[Tuple[Event, State]]] = {}
        self._by_event: Dict[Event, List[Tuple[State, State]]] = {}
        self._transition_set: Set[Transition] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(self, state: State) -> State:
        """Add an isolated state (idempotent) and return it."""
        if state not in self._succ:
            self._succ[state] = []
            self._pred[state] = []
        return state

    def add_event(self, event: Event) -> Event:
        """Declare an event label (idempotent) and return it."""
        if event not in self._by_event:
            self._by_event[event] = []
        return event

    def add_transition(self, source: State, event: Event, target: State) -> None:
        """Add ``source --event--> target``; states/events are auto-added.

        Duplicate transitions are silently ignored so that builders can be
        written without bookkeeping.
        """
        triple = (source, event, target)
        if triple in self._transition_set:
            return
        self.add_state(source)
        self.add_state(target)
        self.add_event(event)
        self._succ[source].append((event, target))
        self._pred[target].append((event, source))
        self._by_event[event].append((source, target))
        self._transition_set.add(triple)

    def set_initial(self, state: State) -> None:
        self.add_state(state)
        self.initial_state = state

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def states(self) -> List[State]:
        return list(self._succ)

    @property
    def events(self) -> List[Event]:
        return list(self._by_event)

    @property
    def num_states(self) -> int:
        return len(self._succ)

    @property
    def num_events(self) -> int:
        return len(self._by_event)

    @property
    def num_transitions(self) -> int:
        return len(self._transition_set)

    def has_state(self, state: State) -> bool:
        return state in self._succ

    def has_event(self, event: Event) -> bool:
        return event in self._by_event

    def has_transition(self, source: State, event: Event, target: State) -> bool:
        return (source, event, target) in self._transition_set

    def successors(self, state: State) -> List[Tuple[Event, State]]:
        """Outgoing ``(event, target)`` pairs of ``state``."""
        return list(self._succ[state])

    def predecessors(self, state: State) -> List[Tuple[Event, State]]:
        """Incoming ``(event, source)`` pairs of ``state``."""
        return list(self._pred[state])

    def enabled_events(self, state: State) -> List[Event]:
        """Events labelling at least one outgoing transition of ``state``."""
        seen: Dict[Event, None] = {}
        for event, _target in self._succ[state]:
            seen[event] = None
        return list(seen)

    def successor(self, state: State, event: Event) -> Optional[State]:
        """The unique ``event``-successor of ``state`` (deterministic TSs).

        Returns ``None`` when the event is not enabled.  If the TS is
        non-deterministic the first recorded successor is returned.
        """
        for candidate_event, target in self._succ[state]:
            if candidate_event == event:
                return target
        return None

    def transitions(self) -> Iterator[Transition]:
        for source, outgoing in self._succ.items():
            for event, target in outgoing:
                yield (source, event, target)

    def transitions_of(self, event: Event) -> List[Tuple[State, State]]:
        """All ``(source, target)`` pairs of transitions labelled ``event``."""
        return list(self._by_event.get(event, []))

    # ------------------------------------------------------------------
    # reachability and restriction
    # ------------------------------------------------------------------
    def reachable_states(self, start: Optional[State] = None) -> Set[State]:
        """States reachable from ``start`` (default: the initial state)."""
        if start is None:
            start = self.initial_state
        if start is None:
            raise ValueError("reachable_states() needs a start or initial state")
        visited = {start}
        frontier = deque([start])
        while frontier:
            state = frontier.popleft()
            for _event, target in self._succ[state]:
                if target not in visited:
                    visited.add(target)
                    frontier.append(target)
        return visited

    def restrict(self, keep: Iterable[State], name: Optional[str] = None) -> "TransitionSystem":
        """A new TS containing only the states in ``keep`` and the
        transitions between them.  The initial state is preserved when it
        survives the restriction."""
        keep_set = set(keep)
        result = TransitionSystem(name or self.name)
        for state in self._succ:
            if state in keep_set:
                result.add_state(state)
        for source, event, target in self.transitions():
            if source in keep_set and target in keep_set:
                result.add_transition(source, event, target)
        if self.initial_state in keep_set:
            result.set_initial(self.initial_state)
        return result

    def restrict_to_reachable(self) -> "TransitionSystem":
        """Drop states that are unreachable from the initial state."""
        return self.restrict(self.reachable_states())

    def copy(self, name: Optional[str] = None) -> "TransitionSystem":
        result = TransitionSystem(name or self.name)
        for state in self._succ:
            result.add_state(state)
        for event in self._by_event:
            result.add_event(event)
        for source, event, target in self.transitions():
            result.add_transition(source, event, target)
        if self.initial_state is not None:
            result.set_initial(self.initial_state)
        return result

    def relabel_events(self, mapping: Dict[Event, Event]) -> "TransitionSystem":
        """A new TS with every event ``e`` replaced by ``mapping.get(e, e)``."""
        result = TransitionSystem(self.name)
        for state in self._succ:
            result.add_state(state)
        for source, event, target in self.transitions():
            result.add_transition(source, mapping.get(event, event), target)
        if self.initial_state is not None:
            result.set_initial(self.initial_state)
        return result

    def rename_states(self, mapping: Dict[State, State]) -> "TransitionSystem":
        """A new TS with every state ``s`` replaced by ``mapping.get(s, s)``."""
        result = TransitionSystem(self.name)
        for state in self._succ:
            result.add_state(mapping.get(state, state))
        for source, event, target in self.transitions():
            result.add_transition(
                mapping.get(source, source), event, mapping.get(target, target)
            )
        if self.initial_state is not None:
            result.set_initial(mapping.get(self.initial_state, self.initial_state))
        return result

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Transition],
        initial: Optional[State] = None,
        name: str = "ts",
    ) -> "TransitionSystem":
        """Build a TS from an iterable of ``(source, event, target)``."""
        ts = cls(name)
        first_source: Optional[State] = None
        for source, event, target in triples:
            if first_source is None:
                first_source = source
            ts.add_transition(source, event, target)
        if initial is not None:
            ts.set_initial(initial)
        elif first_source is not None:
            ts.set_initial(first_source)
        return ts

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"TransitionSystem(name={self.name!r}, states={self.num_states}, "
            f"events={self.num_events}, transitions={self.num_transitions})"
        )

    def __contains__(self, state: State) -> bool:
        return state in self._succ
