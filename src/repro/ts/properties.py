"""Behavioural properties of transition systems.

Determinism, commutativity and (output) event persistency are exactly the
properties the paper requires of a binary-encoded transition system for a
speed-independent circuit implementation to exist (Section 3), and they
are the properties the insertion sets must preserve (SIP sets).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Optional, Set

from repro.ts.transition_system import TransitionSystem

State = Hashable
Event = Hashable


def is_deterministic(ts: TransitionSystem) -> bool:
    """True iff no state has two outgoing transitions with the same label."""
    for state in ts.states:
        seen = set()
        for event, _target in ts.successors(state):
            if event in seen:
                return False
            seen.add(event)
    return True


def is_commutative(ts: TransitionSystem) -> bool:
    """True iff diamonds commute.

    Whenever two events can be executed from some state in both orders,
    both executions must reach the same state.  States where only one of
    the two orders exists do not violate commutativity.
    """
    for state in ts.states:
        outgoing = ts.successors(state)
        for i, (event_a, after_a) in enumerate(outgoing):
            for event_b, after_b in outgoing[i + 1 :]:
                if event_a == event_b:
                    continue
                # a then b
                ab = ts.successor(after_a, event_b)
                # b then a
                ba = ts.successor(after_b, event_a)
                if ab is not None and ba is not None and ab != ba:
                    return False
    return True


def is_event_persistent(
    ts: TransitionSystem,
    event: Event,
    subset: Optional[Iterable[State]] = None,
) -> bool:
    """True iff ``event`` is persistent in ``subset`` (default: all states).

    Following the paper: ``event`` is persistent in ``S'`` iff for every
    state ``s1`` in ``S'`` where ``event`` is enabled, firing any *other*
    event ``b`` enabled in ``s1`` leads to a state where ``event`` is still
    enabled.
    """
    states = set(subset) if subset is not None else None
    for source, _target in ts.transitions_of(event):
        if states is not None and source not in states:
            continue
        for other_event, after_other in ts.successors(source):
            if other_event == event:
                continue
            if ts.successor(after_other, event) is None:
                return False
    return True


def persistent_events(
    ts: TransitionSystem, events: Optional[Iterable[Event]] = None
) -> Set[Event]:
    """The subset of ``events`` (default: all) that are persistent in ``ts``."""
    candidates = list(events) if events is not None else ts.events
    return {event for event in candidates if is_event_persistent(ts, event)}


def is_weakly_connected(ts: TransitionSystem) -> bool:
    """True iff the underlying undirected graph of the TS is connected."""
    states = ts.states
    if not states:
        return True
    undirected = {state: set() for state in states}
    for source, _event, target in ts.transitions():
        undirected[source].add(target)
        undirected[target].add(source)
    start = states[0]
    visited = {start}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        for neighbour in undirected[state]:
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append(neighbour)
    return len(visited) == len(states)


def is_subset_connected(ts: TransitionSystem, subset: Iterable[State]) -> bool:
    """True iff ``subset`` induces a weakly connected subgraph of ``ts``.

    Used by Property P3 ("the intersection of pre-regions must be
    connected") and by the brick-adjacency notion of the heuristic search.
    The empty set is considered connected.
    """
    subset_set = set(subset)
    if not subset_set:
        return True
    undirected = {state: set() for state in subset_set}
    for source, _event, target in ts.transitions():
        if source in subset_set and target in subset_set:
            undirected[source].add(target)
            undirected[target].add(source)
    start = next(iter(subset_set))
    visited = {start}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        for neighbour in undirected[state]:
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append(neighbour)
    return len(visited) == len(subset_set)
