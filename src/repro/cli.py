"""Command-line front end (``pyetrify``).

Three sub-commands mirror the workflow of the original tool:

* ``info FILE.g``  — size, consistency and CSC statistics of an STG;
* ``solve FILE.g`` — insert state signals until CSC holds, report the
  inserted signals and the logic estimate, optionally write the encoded
  specification back as a ``.g`` file;
* ``bench NAME``   — run a named benchmark from the built-in library.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import analyze_stg, encode_stg
from repro.bench_stg.library import benchmark_names, load_benchmark
from repro.core.search import SearchSettings
from repro.core.solver import SolverSettings
from repro.stg.parser import read_g_file
from repro.stg.writer import write_g


def _solver_settings(args: argparse.Namespace) -> SolverSettings:
    return SolverSettings(
        search=SearchSettings(
            frontier_width=args.frontier_width,
            brick_mode=args.bricks,
            enlarge_concurrency=args.enlarge_concurrency,
        ),
        max_signals=args.max_signals,
        verbose=args.verbose,
    )


def _cmd_info(args: argparse.Namespace) -> int:
    stg = read_g_file(args.file)
    info = analyze_stg(stg, max_states=args.max_states)
    width = max(len(key) for key in info)
    for key, value in info.items():
        print(f"{key:<{width}} : {value}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    stg = read_g_file(args.file)
    report = encode_stg(
        stg,
        settings=_solver_settings(args),
        estimate_logic=not args.no_logic,
        resynthesize=args.output is not None,
        max_states=args.max_states,
    )
    row = report.table_row()
    for key, value in row.items():
        print(f"{key:<12} : {value}")
    if report.inserted_signals:
        print(f"{'new signals':<12} : {', '.join(report.inserted_signals)}")
    if report.circuit is not None and args.equations:
        print("next-state functions:")
        for signal, implementation in report.circuit.implementations.items():
            print(f"  [{signal}] = {implementation.expression()}")
    if args.output is not None:
        if report.encoded_stg is not None:
            write_g(report.encoded_stg, args.output)
            print(f"encoded STG written to {args.output}")
        else:
            print(
                "warning: could not re-synthesise an STG "
                f"({report.resynthesis_error or 'CSC not solved'})",
                file=sys.stderr,
            )
            return 1
    return 0 if report.solved else 2


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list:
        for name in benchmark_names(args.table):
            print(name)
        return 0
    stg = load_benchmark(args.name, table=args.table)
    report = encode_stg(stg, settings=_solver_settings(args), max_states=args.max_states)
    for key, value in report.table_row().items():
        print(f"{key:<12} : {value}")
    return 0 if report.solved else 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pyetrify",
        description="Region-based state encoding for asynchronous circuits (DAC'96 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--frontier-width", type=int, default=8, help="FW parameter of the heuristic search")
        sub.add_argument("--bricks", choices=["regions", "excitation", "states"], default="regions", help="granularity of the insertion search space")
        sub.add_argument("--max-signals", type=int, default=32, help="maximum number of inserted state signals")
        sub.add_argument("--max-states", type=int, default=200000, help="bound on explicit state-graph size")
        sub.add_argument("--enlarge-concurrency", action="store_true", help="greedily increase concurrency of inserted signals")
        sub.add_argument("--verbose", action="store_true")

    info = subparsers.add_parser("info", help="report STG statistics and CSC conflicts")
    info.add_argument("file", help="input .g file")
    info.add_argument("--max-states", type=int, default=200000)
    info.set_defaults(handler=_cmd_info)

    solve = subparsers.add_parser("solve", help="insert state signals until CSC holds")
    solve.add_argument("file", help="input .g file")
    solve.add_argument("-o", "--output", help="write the encoded STG to this .g file")
    solve.add_argument("--equations", action="store_true", help="print minimised next-state functions")
    solve.add_argument("--no-logic", action="store_true", help="skip logic estimation")
    add_common(solve)
    solve.set_defaults(handler=_cmd_solve)

    bench = subparsers.add_parser("bench", help="run a benchmark from the built-in library")
    bench.add_argument("name", nargs="?", default="vme2int")
    bench.add_argument("--table", choices=["table1", "table2"], default="table2")
    bench.add_argument("--list", action="store_true", help="list available benchmarks")
    add_common(bench)
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
