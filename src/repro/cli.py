"""Command-line front end (``pyetrify``).

Six sub-commands mirror the workflow of the original tool plus the
service and symbolic tiers grown on top of it:

* ``info FILE.g``  — size, consistency and CSC statistics of an STG;
* ``solve FILE.g`` — insert state signals until CSC holds, report the
  inserted signals and the logic estimate, optionally write the encoded
  specification back as a ``.g`` file;
* ``census``       — symbolic (BDD) state-space census: the exact number
  of reachable states without enumerating any of them
  (``pyetrify census --benchmark pipe16 --table table1``);
* ``check-csc``    — symbolic CSC verdict: USC/CSC conflict pair counts
  and witness cubes via the code-equality relation, again without
  enumeration;
* ``bench NAME``   — run a named benchmark from the built-in library;
* ``serve``        — run the encoding service front: a durable job
  queue, a content-addressed result store and the versioned ``/v1``
  JSON HTTP API over the batch engine
  (``pyetrify serve --port 8080 --jobs 4 --store service.db``);
* ``worker``       — attach an independent worker process to a service
  backend and drain its queue (``pyetrify worker --store service.db
  --jobs 2``); run N of them against one store to scale out;
* ``admin``        — manage the service's tenants/API keys
  (``pyetrify admin create-key alice --store service.db``).

``bench --all`` runs the whole library as a batch through the encoding
engine: ``--jobs N`` encodes N benchmarks concurrently in worker
processes (results are byte-identical to a serial run), ``--smallest K``
keeps only the K smallest STGs (the CI smoke job uses 3), and
``--json FILE`` writes the machine-readable batch record that CI uploads
as its benchmark artifact.  In ``--all`` mode each case runs with its
own library settings (frontier width 16, relaxed cases with
``allow_input_delay``), matching the Table-1/Table-2 harnesses.
``--engine symbolic`` (or ``auto``) routes the run through the symbolic
tier, which also admits the very large Table-1 rows the explicit engine
must skip.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import analyze_stg, encode_stg
from repro.bench_stg.library import benchmark_names, load_benchmark
from repro.core.search import SearchSettings
from repro.core.solver import SolverSettings
from repro.engine.batch import run_benchmark_suite
from repro.stg.parser import read_g_file
from repro.stg.writer import write_g


def _solver_settings(args: argparse.Namespace) -> SolverSettings:
    return SolverSettings(
        search=SearchSettings(
            frontier_width=args.frontier_width if args.frontier_width is not None else 8,
            brick_mode=args.bricks if args.bricks is not None else "regions",
            enlarge_concurrency=args.enlarge_concurrency,
        ),
        max_signals=args.max_signals if args.max_signals is not None else 32,
        verbose=args.verbose,
        search_jobs=args.search_jobs if getattr(args, "search_jobs", None) is not None else 1,
        kernel=getattr(args, "kernel", None) or "auto",
        core_budget=getattr(args, "core_budget", None),
    )


def _load_stg(args: argparse.Namespace):
    """The STG a census/check-csc invocation refers to (file or benchmark)."""
    if (args.file is None) == (args.benchmark is None):
        print("error: provide a .g file or --benchmark NAME (not both)", file=sys.stderr)
        return None
    if args.file is not None:
        return read_g_file(args.file)
    return load_benchmark(args.benchmark, table=args.table)


def _cmd_census(args: argparse.Namespace) -> int:
    from repro.symbolic import symbolic_census

    stg = _load_stg(args)
    if stg is None:
        return 2
    census = symbolic_census(stg, reorder=args.reorder)
    row = census.as_dict()
    cache = row.pop("cache")
    row["cache_hit_rate"] = cache.get("hit_rate")
    width = max(len(key) for key in row)
    for key, value in row.items():
        print(f"{key:<{width}} : {value}")
    return 0


def _cmd_check_csc(args: argparse.Namespace) -> int:
    from repro.symbolic import symbolic_check_csc

    stg = _load_stg(args)
    if stg is None:
        return 2
    report = symbolic_check_csc(stg, witness_limit=args.witnesses, reorder=args.reorder)
    row = report.as_dict()
    witnesses = row.pop("witnesses")
    width = max(len(key) for key in row)
    for key, value in row.items():
        print(f"{key:<{width}} : {value}")
    for index, witness in enumerate(witnesses):
        print(f"witness {index + 1}: code={witness['code']}")
        print(f"  first  : {', '.join(witness['first_marking'])}")
        print(f"  second : {', '.join(witness['second_marking'])}")
    return 0 if report.csc_holds else 2


def _cmd_info(args: argparse.Namespace) -> int:
    stg = read_g_file(args.file)
    info = analyze_stg(stg, max_states=args.max_states)
    width = max(len(key) for key in info)
    for key, value in info.items():
        print(f"{key:<{width}} : {value}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    stg = read_g_file(args.file)
    if args.trace is not None:
        from repro.obs import start_trace

        start_trace()
    report = encode_stg(
        stg,
        settings=_solver_settings(args),
        estimate_logic=not args.no_logic,
        resynthesize=args.output is not None,
        max_states=args.max_states,
    )
    row = report.table_row()
    for key, value in row.items():
        print(f"{key:<12} : {value}")
    if report.inserted_signals:
        print(f"{'new signals':<12} : {', '.join(report.inserted_signals)}")
    if report.circuit is not None and args.equations:
        print("next-state functions:")
        for signal, implementation in report.circuit.implementations.items():
            print(f"  [{signal}] = {implementation.expression()}")
    if args.trace is not None:
        from repro.obs import export_chrome_trace

        count = export_chrome_trace(args.trace, cleanup=True)
        print(f"trace with {count} events written to {args.trace}")
    if args.output is not None:
        if report.encoded_stg is not None:
            write_g(report.encoded_stg, args.output)
            print(f"encoded STG written to {args.output}")
        else:
            print(
                "warning: could not re-synthesise an STG "
                f"({report.resynthesis_error or 'CSC not solved'})",
                file=sys.stderr,
            )
            return 1
    return 0 if report.solved else 2


def _cmd_synth(args: argparse.Namespace) -> int:
    """Synthesize verified logic from an STG (``pyetrify synth``).

    Runs the full paper pipeline: solve CSC, derive and minimise the
    next-state function of every non-input signal, build the gate
    network (optionally decomposed into 2-input gates under the bounded
    speed-independence check), verify it against the SG token game, and
    write equations / Verilog / BLIF.
    """
    import pathlib

    from repro.synth import synthesize

    stg = _load_stg(args)
    if stg is None:
        return 2
    report = encode_stg(
        stg,
        settings=_solver_settings(args),
        estimate_logic=False,
        max_states=args.max_states,
    )
    if not report.solved:
        print(
            f"error: CSC not solved for {stg.name!r} "
            f"({report.result.conflicts_remaining} conflicts remain); nothing to synthesize",
            file=sys.stderr,
        )
        return 2
    result = synthesize(
        report.result.final_sg,
        name=stg.name,
        decompose=args.decompose,
        verify=not args.no_verify,
    )
    summary = result.summary()
    for key in ("name", "signals", "literals", "cubes", "gates", "wires", "verified", "decomposed"):
        print(f"{key:<12} : {summary[key]}")
    if result.decomposition.get("fallback"):
        print(
            f"{'fallback':<12} : decomposition rejected "
            f"({result.decomposition['fallback']}); complex gates emitted"
        )
    if report.inserted_signals:
        print(f"{'new signals':<12} : {', '.join(report.inserted_signals)}")
    texts = {"eqn": result.equations, "v": result.verilog, "blif": result.blif}
    wanted = {"eqn": ["eqn"], "verilog": ["v"], "blif": ["blif"]}.get(
        args.fmt, ["eqn", "v", "blif"]
    )
    if args.out is not None:
        directory = pathlib.Path(args.out)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            for extension in wanted:
                path = directory / f"{stg.name}.{extension}"
                path.write_text(texts[extension], encoding="utf-8")
                print(f"written {path}")
        except OSError as error:
            print(f"error: cannot write netlists to {args.out}: {error}", file=sys.stderr)
            return 2
    else:
        for extension in wanted:
            print()
            print(texts[extension], end="")
    if not args.no_verify and not result.verified:
        print("error: gate-level verification failed", file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list:
        for name in benchmark_names(None if args.table == "all" else args.table):
            print(name)
        return 0
    if args.all:
        return _cmd_bench_all(args)
    if args.table == "all":
        print("error: --table all requires --all or --list", file=sys.stderr)
        return 2
    stg = load_benchmark(args.name, table=args.table)
    if args.engine != "explicit":
        from repro.engine.batch import encode_many

        batch = encode_many(
            [stg],
            settings=[_solver_settings(args)],
            max_states=args.max_states,
            engine=args.engine,
        )
        item = batch.items[0]
        if item.error is not None:
            print(f"error: {item.error}", file=sys.stderr)
            return 2
        for key, value in item.table_row.items():
            print(f"{key:<12} : {value}")
        return 0 if item.solved else 2
    report = encode_stg(stg, settings=_solver_settings(args), max_states=args.max_states)
    for key, value in report.table_row().items():
        print(f"{key:<12} : {value}")
    return 0 if report.solved else 2


def _cmd_bench_all(args: argparse.Namespace) -> int:
    """Batch-encode the benchmark library (``bench --all``).

    Per-case library settings are the baseline (frontier width 16,
    relaxed cases with ``allow_input_delay``); explicitly supplied CLI
    tuning flags overlay them.
    """
    result = run_benchmark_suite(
        table=args.table,
        jobs=args.jobs,
        smallest=args.smallest,
        frontier_width=args.frontier_width if args.frontier_width is not None else 16,
        brick_mode=args.bricks,
        max_signals=args.max_signals,
        enlarge_concurrency=args.enlarge_concurrency,
        verbose=args.verbose,
        max_states=args.max_states,
        timeout=args.timeout,
        engine=args.engine,
        search_jobs=args.search_jobs,
        kernel=getattr(args, "kernel", None),
    )
    name_width = max((len(item.name) for item in result.items), default=4)
    for item in result.items:
        if item.status == "timeout":
            print(f"{item.name:<{name_width}}  TIMEOUT after {item.seconds:.2f}s")
            continue
        if item.error is not None:
            print(f"{item.name:<{name_width}}  ERROR: {item.error}")
            continue
        row = item.table_row
        print(
            f"{item.name:<{name_width}}  states={row.get('states'):<6} "
            f"inserted={row.get('inserted'):<2} solved={str(item.solved):<5} "
            f"cpu={item.seconds:.2f}s"
        )
    print(
        f"-- {result.solved_count}/{len(result.items)} solved, "
        f"jobs={result.jobs}, wall {result.wall_seconds:.2f}s"
    )
    if args.json is not None:
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as error:
            print(f"error: cannot write batch record to {args.json}: {error}", file=sys.stderr)
            return 2
        print(f"batch record written to {args.json}")
    # "Unsolved" is a legitimate benchmark outcome (some strict-mode cases
    # have no input-preserving solution), and so is a requested timeout;
    # only per-item crashes fail the run.
    return 0 if all(item.status != "error" for item in result.items) else 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the encoding service front (``pyetrify serve``).

    Boots :class:`repro.service.EncodingService` on the backend at
    ``--store`` (jobs and results survive restarts) and serves the
    versioned ``/v1`` JSON HTTP API of :mod:`repro.service.asgi` until
    interrupted.  With ``--no-workers`` the front only accepts and
    serves jobs; start ``pyetrify worker`` processes against the same
    store to drain the queue (front first — it recovers interrupted
    jobs at boot).
    """
    from repro.api import serve as bind_server
    from repro.service import EncodingService

    service = EncodingService(
        args.store,
        jobs=args.jobs,
        timeout=args.timeout,
        max_entries=args.max_entries,
        search_jobs=args.search_jobs,
        max_backlog=args.max_backlog,
        autostart=not args.no_workers,
        core_budget=args.core_budget,
    )
    try:
        server = bind_server(
            service,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            cors_origins=args.cors_origin,
        )
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        service.close()
        return 2
    host, port = server.server_address[:2]
    print(f"pyetrify service listening on http://{host}:{port} (store: {args.store})")
    print(
        "endpoints: POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events, "
        "GET /v1/results/{fp}, GET /v1/healthz, GET /v1/stats"
    )
    if args.no_workers:
        print("workers: none in-process; attach `pyetrify worker --store ...` processes")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Attach a worker process to a service backend (``pyetrify worker``).

    Opens its own connections to the shared store/queue (content-addressed
    fingerprints make results location-independent, so any worker can run
    any job) and drains the queue until interrupted.  Deliberately does
    *not* recover ``running`` jobs at startup — that is the front's
    boot-time action; a late-joining worker must not steal jobs that
    sibling processes are still executing.
    """
    import time as _time

    from repro.service import EncodingService

    service = EncodingService(
        args.store,
        jobs=args.jobs,
        timeout=args.timeout,
        search_jobs=args.search_jobs,
        core_budget=args.core_budget,
        recover=False,
    )
    print(
        f"pyetrify worker {service.pool.name} draining {args.store} "
        f"(jobs={args.jobs})"
    )
    try:
        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nworker stopping")
    finally:
        service.close()
    return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    """Manage the service's tenants and API keys (``pyetrify admin``).

    Works directly on the backend file, so the very first (admin) key of
    a deployment can be provisioned without any key to authenticate with
    — filesystem access to the store is the root credential.
    """
    from repro.service import open_backend

    registry = open_backend(args.store).open_tenants()
    try:
        if args.admin_command == "create-key":
            try:
                created = registry.provision(
                    args.name,
                    admin=args.admin,
                    quota_active_jobs=args.quota,
                    rate_per_second=args.rate,
                    burst=args.burst,
                )
            except KeyError as error:
                print(f"error: {error.args[0]}", file=sys.stderr)
                return 2
            tenant = created["tenant"]
            print(f"tenant   : {tenant['name']} (admin={tenant['admin']})")
            print(f"quota    : {tenant['quota_active_jobs']}")
            print(f"rate     : {tenant['rate_per_second']} (burst {tenant['burst']})")
            print(f"api key  : {created['api_key']}")
            print("store this key now — it is shown once and only its hash is kept")
            return 0
        if args.admin_command == "list-keys":
            tenants = registry.list_tenants()
            if not tenants:
                print("no tenants provisioned (service runs in open mode)")
                return 0
            for tenant in tenants:
                flags = " admin" if tenant["admin"] else ""
                print(
                    f"{tenant['name']}{flags} quota={tenant['quota_active_jobs']} "
                    f"rate={tenant['rate_per_second']}"
                )
            return 0
        if args.admin_command == "revoke-key":
            if registry.revoke(args.name):
                print(f"revoked {args.name}")
                return 0
            print(f"error: no tenant named {args.name!r}", file=sys.stderr)
            return 2
        print("error: unknown admin command", file=sys.stderr)
        return 2
    finally:
        registry.close()


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="pyetrify",
        description="Region-based state encoding for asynchronous circuits (DAC'96 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        # Tuning flags default to None so `bench --all` can tell "not
        # given" (use the per-case library settings) from an explicit
        # value (overlay it); single-STG commands resolve None to the
        # documented defaults in _solver_settings.
        sub.add_argument("--frontier-width", type=int, default=None, help="FW parameter of the heuristic search (default 8; 16 in --all mode)")
        sub.add_argument("--bricks", choices=["regions", "excitation", "states"], default=None, help="granularity of the insertion search space (default regions)")
        sub.add_argument("--max-signals", type=int, default=None, help="maximum number of inserted state signals (default 32)")
        sub.add_argument("--max-states", type=int, default=200000, help="bound on explicit state-graph size")
        sub.add_argument("--enlarge-concurrency", action="store_true", help="greedily increase concurrency of inserted signals")
        sub.add_argument("--search-jobs", type=int, default=None, metavar="N", help="shard each insertion search across N workers (results identical to serial; in --all mode clamped so --jobs x N fits the machine)")
        sub.add_argument("--kernel", choices=["auto", "bigint", "planes"], default=None, help="block-evaluation kernel: bit-plane batches (planes), the big-integer oracle (bigint), or planes when numpy is importable (auto, the default); results are byte-identical either way")
        sub.add_argument("--core-budget", type=int, default=None, metavar="N", help="symbolic engines only: materialize conflict cores up to N states into the explicit solver (default 512); larger cores are solved fully in BDD space — results are conformance-pinned identical either way")
        sub.add_argument("--verbose", action="store_true", help="log per-insertion solver progress (debug level)")
        sub.add_argument("-q", "--quiet", action="store_true", help="log errors only")

    info = subparsers.add_parser("info", help="report STG statistics and CSC conflicts")
    info.add_argument("file", help="input .g file")
    info.add_argument("--max-states", type=int, default=200000)
    info.set_defaults(handler=_cmd_info)

    def add_symbolic_input(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("file", nargs="?", help="input .g file")
        sub.add_argument("--benchmark", metavar="NAME", help="use a built-in benchmark instead of a file")
        sub.add_argument("--table", choices=["table1", "table2"], default="table2", help="library table of --benchmark")
        sub.add_argument("--reorder", action="store_true", help="enable dynamic BDD variable reordering (sifting); verdicts are unchanged, only node-table shape and wall-clock")

    census = subparsers.add_parser(
        "census", help="symbolic (BDD) state-space census — exact state count without enumeration"
    )
    add_symbolic_input(census)
    census.set_defaults(handler=_cmd_census)

    check = subparsers.add_parser(
        "check-csc", help="symbolic CSC verdict — conflict pair counts and witnesses without enumeration"
    )
    add_symbolic_input(check)
    check.add_argument("--witnesses", type=int, default=4, metavar="N", help="conflict witness cubes to decode (default 4)")
    check.add_argument("--core-budget", type=int, default=None, metavar="N", help="accepted for flag parity with solve/bench; the detection verdict and core size never depend on it")
    check.set_defaults(handler=_cmd_check_csc)

    solve = subparsers.add_parser("solve", help="insert state signals until CSC holds")
    solve.add_argument("file", help="input .g file")
    solve.add_argument("-o", "--output", help="write the encoded STG to this .g file")
    solve.add_argument("--equations", action="store_true", help="print minimised next-state functions")
    solve.add_argument("--no-logic", action="store_true", help="skip logic estimation")
    solve.add_argument("--trace", default=None, metavar="FILE", help="write a Chrome trace-event JSON of the solve (load in Perfetto or chrome://tracing)")
    add_common(solve)
    solve.set_defaults(handler=_cmd_solve)

    bench = subparsers.add_parser("bench", help="run a benchmark from the built-in library")
    bench.add_argument("name", nargs="?", default="vme2int")
    bench.add_argument("--table", choices=["table1", "table2", "all"], default="table2")
    bench.add_argument("--list", action="store_true", help="list available benchmarks")
    bench.add_argument("--all", action="store_true", help="batch-encode every solvable benchmark of the table")
    bench.add_argument("--jobs", type=int, default=1, help="worker processes for --all (results identical to serial)")
    bench.add_argument("--smallest", type=int, default=None, metavar="K", help="with --all: keep only the K smallest STGs")
    bench.add_argument("--json", default=None, metavar="FILE", help="with --all: write the batch record as JSON")
    bench.add_argument("--timeout", type=float, default=None, metavar="SECONDS", help="with --all: per-benchmark wall-clock bound (timed-out cases report status=timeout)")
    bench.add_argument("--engine", choices=["explicit", "symbolic", "auto"], default="explicit", help="pipeline to run: explicit enumeration, the symbolic (BDD) tier, or auto (symbolic census first)")
    add_common(bench)
    bench.set_defaults(handler=_cmd_bench)

    synth = subparsers.add_parser(
        "synth", help="synthesize a verified gate netlist from a CSC-solved encoding"
    )
    synth.add_argument("file", nargs="?", help="input .g file")
    synth.add_argument("--benchmark", default=None, metavar="NAME", help="use a library benchmark instead of a file")
    synth.add_argument("--table", choices=["table1", "table2"], default="table2")
    synth.add_argument("-o", "--out", default=None, metavar="DIR", help="write netlist files into DIR (default: print to stdout)")
    synth.add_argument("--fmt", choices=["eqn", "verilog", "blif", "all"], default="all", help="output format(s) to emit (default all)")
    synth.add_argument("--decompose", action="store_true", help="decompose into 2-input gates when the bounded speed-independence check passes")
    synth.add_argument("--no-verify", action="store_true", help="skip gate-level verification against the state graph")
    add_common(synth)
    synth.set_defaults(handler=_cmd_synth)

    serve = subparsers.add_parser("serve", help="run the encoding service (job queue + result store + HTTP API)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080, help="TCP port (0 = ephemeral)")
    serve.add_argument("--jobs", type=int, default=1, help="worker-pool width (process workers per batch)")
    serve.add_argument("--store", default="pyetrify-service.db", metavar="PATH", help="sqlite file holding jobs and results (survives restarts)")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS", help="per-job wall-clock bound")
    serve.add_argument("--search-jobs", type=int, default=None, metavar="N", help="default in-solve sharding width for jobs that do not request one (clamped so --jobs x N fits the machine)")
    serve.add_argument("--core-budget", type=int, default=None, metavar="N", help="default symbolic conflict-core bound for jobs that do not request one (default 512)")
    serve.add_argument("--max-entries", type=int, default=None, metavar="N", help="LRU bound on the result store (default unbounded)")
    serve.add_argument("--max-backlog", type=int, default=None, metavar="N", help="reject submissions with 503 when N jobs are already pending (default unbounded)")
    serve.add_argument("--no-workers", action="store_true", help="serve the API only; drain the queue with separate `pyetrify worker` processes")
    serve.add_argument("--cors-origin", action="append", default=None, metavar="ORIGIN", help="allow cross-origin browser requests from ORIGIN (repeatable; '*' allows any)")
    serve.add_argument("--verbose", action="store_true", help="log every HTTP request (structured access log at info level)")
    serve.add_argument("-q", "--quiet", action="store_true", help="log errors only")
    serve.set_defaults(handler=_cmd_serve)

    worker = subparsers.add_parser("worker", help="attach a worker process to a service backend and drain its queue")
    worker.add_argument("--store", default="pyetrify-service.db", metavar="PATH", help="backend shared with the serving front")
    worker.add_argument("--jobs", type=int, default=1, help="concurrent encodings in this worker process")
    worker.add_argument("--timeout", type=float, default=None, metavar="SECONDS", help="per-job wall-clock bound")
    worker.add_argument("--search-jobs", type=int, default=None, metavar="N", help="default in-solve sharding width (clamped against --jobs)")
    worker.add_argument("--core-budget", type=int, default=None, metavar="N", help="default symbolic conflict-core bound for jobs that do not request one (default 512)")
    worker.add_argument("--verbose", action="store_true", help="debug-level logging")
    worker.add_argument("-q", "--quiet", action="store_true", help="log errors only")
    worker.set_defaults(handler=_cmd_worker)

    admin = subparsers.add_parser("admin", help="manage service tenants and API keys (direct backend access)")
    admin.add_argument("--store", default="pyetrify-service.db", metavar="PATH", help="service backend to administer")
    admin_sub = admin.add_subparsers(dest="admin_command", required=True)
    create_key = admin_sub.add_parser("create-key", help="provision a tenant; prints its one-time API key")
    create_key.add_argument("name", help="tenant name (unique)")
    create_key.add_argument("--admin", action="store_true", help="grant access to /v1/admin endpoints")
    create_key.add_argument("--quota", type=int, default=None, metavar="N", help="max concurrently active (pending+running) jobs")
    create_key.add_argument("--rate", type=float, default=None, metavar="R", help="sustained submissions per second (token bucket)")
    create_key.add_argument("--burst", type=int, default=None, metavar="N", help="token-bucket burst capacity (default: one second's worth)")
    list_keys = admin_sub.add_parser("list-keys", help="list provisioned tenants (never shows keys)")
    revoke = admin_sub.add_parser("revoke-key", help="delete a tenant's key")
    revoke.add_argument("name")
    # accept --store after the subcommand too (`admin create-key x --store db`);
    # SUPPRESS keeps the subcommand from clobbering a value parsed by the parent
    for sub in (create_key, list_keys, revoke):
        sub.add_argument("--store", default=argparse.SUPPRESS, metavar="PATH", help=argparse.SUPPRESS)
    admin.set_defaults(handler=_cmd_admin)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # one global threshold (repro.obs.log): -q wins over --verbose;
    # the default "info" keeps operational warnings visible
    if getattr(args, "quiet", False):
        from repro.obs import configure_logging

        configure_logging("error")
    elif getattr(args, "verbose", False):
        from repro.obs import configure_logging

        configure_logging("debug")
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
