"""Two-level minimisation from explicit ON / OFF sets.

This is an espresso-style heuristic tailored to the sizes that occur in
asynchronous controller synthesis: the ON and OFF sets are lists of
reachable state codes (hundreds to a few thousand minterms), everything
else is a don't care.  The algorithm is the classical expand /
greedy-irredundant-cover loop:

1. every ON minterm seeds a cube;
2. each cube is *expanded* literal by literal as long as it stays disjoint
   from the OFF set (literal order is chosen by how many OFF minterms the
   literal excludes, a common espresso heuristic);
3. a greedy set cover keeps a small subset of the expanded cubes that
   still covers every ON minterm.

The result is a correct, irredundant (though not necessarily minimum)
cover; its literal count is the area proxy used in the Table 2
reproduction.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.logic.cubes import Cover, Cube

Minterm = Tuple[int, ...]


def _pack(minterm: Sequence[int]) -> int:
    packed = 0
    for position, bit in enumerate(minterm):
        if bit:
            packed |= 1 << position
    return packed


def _cube_hits_offset(cube: Cube, packed_offset: Sequence[int]) -> bool:
    care = cube.care
    value = cube.value
    for packed in packed_offset:
        if (packed & care) == value:
            return True
    return False


def expand_cube(cube: Cube, packed_offset: Sequence[int], order: Sequence[int]) -> Cube:
    """Drop literals of ``cube`` (in ``order``) while avoiding the OFF set."""
    current = cube
    for position in order:
        if current.literal(position) == "-":
            continue
        candidate = current.without_literal(position)
        if not _cube_hits_offset(candidate, packed_offset):
            current = candidate
    return current


def _literal_order(width: int, on_packed: Sequence[int], off_packed: Sequence[int]) -> List[int]:
    """Variable order for expansion: try to drop the least useful literals
    first (those that exclude the fewest OFF minterms)."""
    scores = []
    for position in range(width):
        mask = 1 << position
        ones = sum(1 for packed in off_packed if packed & mask)
        zeros = len(off_packed) - ones
        # A variable that splits the OFF set evenly is "useful"; one whose
        # OFF minterms are all on one side is cheap to drop.
        scores.append((min(ones, zeros), position))
    scores.sort()
    return [position for _score, position in scores]


def minimize_cover(
    on_set: Iterable[Minterm],
    off_set: Iterable[Minterm],
    width: int,
) -> Cover:
    """Compute a small cover of ``on_set`` that avoids ``off_set``.

    Everything outside both sets is treated as don't care.  Raises
    ``ValueError`` when the two sets overlap (the caller should have
    resolved CSC first).
    """
    on_list = [tuple(minterm) for minterm in on_set]
    off_list = [tuple(minterm) for minterm in off_set]
    on_packed = [_pack(m) for m in on_list]
    off_packed = [_pack(m) for m in off_list]

    overlap = set(on_packed) & set(off_packed)
    if overlap:
        raise ValueError(
            f"ON and OFF sets overlap on {len(overlap)} minterms; the function is ill-defined"
        )
    if not on_list:
        return Cover(width)

    order = _literal_order(width, on_packed, off_packed)

    # Expand one cube per ON minterm, deduplicating as we go.
    expanded: List[Cube] = []
    seen: Set[Tuple[int, int]] = set()
    for minterm in on_list:
        cube = expand_cube(Cube.from_minterm(minterm), off_packed, order)
        key = (cube.care, cube.value)
        if key not in seen:
            seen.add(key)
            expanded.append(cube)

    # Greedy irredundant cover of the ON minterms.
    remaining: Set[int] = set(range(len(on_list)))
    coverage: List[Set[int]] = []
    for cube in expanded:
        covered = {
            index
            for index, packed in enumerate(on_packed)
            if (packed & cube.care) == cube.value
        }
        coverage.append(covered)

    chosen: List[Cube] = []
    while remaining:
        best_index = -1
        best_gain = -1
        best_literals = 0
        for index, covered in enumerate(coverage):
            gain = len(covered & remaining)
            if gain == 0:
                continue
            literals = expanded[index].literal_count()
            if gain > best_gain or (gain == best_gain and literals < best_literals):
                best_index = index
                best_gain = gain
                best_literals = literals
        if best_index < 0:  # pragma: no cover - defensive, cannot happen
            raise RuntimeError("greedy cover failed to make progress")
        chosen.append(expanded[best_index])
        remaining -= coverage[best_index]

    return Cover(width, chosen)


def verify_cover(
    cover: Cover, on_set: Iterable[Minterm], off_set: Iterable[Minterm]
) -> List[str]:
    """Sanity check used by tests: the cover must contain every ON minterm
    and no OFF minterm.  Returns a list of violation descriptions."""
    problems: List[str] = []
    for minterm in on_set:
        if not cover.contains_minterm(minterm):
            problems.append(f"ON minterm {minterm} not covered")
    for minterm in off_set:
        if cover.contains_minterm(minterm):
            problems.append(f"OFF minterm {minterm} wrongly covered")
    return problems
