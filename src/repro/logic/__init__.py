"""Speed-independent logic estimation.

Once CSC holds, every non-input signal has a well-defined next-state
function of the signal vector.  This package extracts those functions from
the encoded state graph, minimises them as two-level covers (an
espresso-style expand / irredundant-cover heuristic working from explicit
ON/OFF sets), and reports literal counts — the "area" proxy used to
reproduce Table 2 — together with per-signal complex-gate descriptions and
trigger-signal statistics.

.. note::
   :func:`estimate_circuit` is the *estimation* half of the story; the
   full synthesis pipeline (concrete gate networks, emitters, gate-level
   verification against the SG token game) lives in :mod:`repro.synth`,
   which re-exports the estimate types.  New code that wants a netlist
   rather than a literal count should call :func:`repro.synth.synthesize`;
   the covers are identical by construction, and
   ``tests/test_synth.py`` pins the equality on every solvable library
   case.
"""

from repro.logic.cubes import Cube, Cover
from repro.logic.minimize import minimize_cover, expand_cube, verify_cover
from repro.logic.nextstate import (
    CSCViolationError,
    NextStateFunction,
    classify_codes,
    extract_next_state_function,
    function_from_codes,
)
from repro.logic.netlist import (
    SignalImplementation,
    CircuitEstimate,
    estimate_circuit,
    trigger_signal_count,
)

__all__ = [
    "Cube",
    "Cover",
    "minimize_cover",
    "expand_cube",
    "verify_cover",
    "CSCViolationError",
    "NextStateFunction",
    "classify_codes",
    "extract_next_state_function",
    "function_from_codes",
    "SignalImplementation",
    "CircuitEstimate",
    "estimate_circuit",
    "trigger_signal_count",
]
