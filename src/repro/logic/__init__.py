"""Speed-independent logic estimation.

Once CSC holds, every non-input signal has a well-defined next-state
function of the signal vector.  This package extracts those functions from
the encoded state graph, minimises them as two-level covers (an
espresso-style expand / irredundant-cover heuristic working from explicit
ON/OFF sets), and reports literal counts — the "area" proxy used to
reproduce Table 2 — together with per-signal complex-gate descriptions and
trigger-signal statistics.
"""

from repro.logic.cubes import Cube, Cover
from repro.logic.minimize import minimize_cover, expand_cube
from repro.logic.nextstate import (
    CSCViolationError,
    NextStateFunction,
    extract_next_state_function,
)
from repro.logic.netlist import (
    SignalImplementation,
    CircuitEstimate,
    estimate_circuit,
    trigger_signal_count,
)

__all__ = [
    "Cube",
    "Cover",
    "minimize_cover",
    "expand_cube",
    "CSCViolationError",
    "NextStateFunction",
    "extract_next_state_function",
    "SignalImplementation",
    "CircuitEstimate",
    "estimate_circuit",
    "trigger_signal_count",
]
