"""Next-state functions of non-input signals.

In a speed-independent implementation each non-input signal ``a`` is
produced by a (complex) gate computing its *next-state function*: the
value ``a`` is heading to, as a function of the current signal vector.
The function is well defined exactly when the state graph satisfies CSC —
two states with the same code must imply the same next value for every
non-input signal — which is why CSC is the necessary and sufficient
condition for implementability (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.logic.cubes import Cover
from repro.logic.minimize import minimize_cover
from repro.stg.state_graph import StateGraph

Code = Tuple[int, ...]


class CSCViolationError(ValueError):
    """Raised when a next-state function is requested for a state graph
    that still has CSC conflicts on the relevant signal."""


@dataclass
class NextStateFunction:
    """ON/OFF/DC characterisation and minimised cover of one signal."""

    signal: str
    inputs: List[str]
    on_set: List[Code]
    off_set: List[Code]
    cover: Cover

    @property
    def literal_count(self) -> int:
        return self.cover.literal_count()

    @property
    def cube_count(self) -> int:
        return len(self.cover)

    def expression(self) -> str:
        """The minimised function as a boolean expression over signal names."""
        return self.cover.to_expression(self.inputs)

    def evaluate(self, code: Code) -> int:
        return 1 if self.cover.contains_minterm(code) else 0


def _classify_codes(sg: StateGraph, signal: str) -> Tuple[Set[Code], Set[Code]]:
    """Split the reachable codes into ON (next value 1) and OFF (next 0)."""
    on_codes: Set[Code] = set()
    off_codes: Set[Code] = set()
    for state in sg.states:
        code = sg.code(state)
        if sg.next_value(state, signal):
            on_codes.add(code)
        else:
            off_codes.add(code)
    return on_codes, off_codes


def classify_codes(sg: StateGraph, signal: str) -> Tuple[List[Code], List[Code]]:
    """Validated, sorted ON/OFF code sets for ``signal``.

    This is the *extraction* half of :func:`extract_next_state_function`,
    exposed so callers (the synthesis tier) can time extraction and
    minimisation separately.  Raises :class:`CSCViolationError` when some
    reachable code requires both next values — i.e. when a CSC conflict
    involves ``signal``.
    """
    if signal not in sg.signals:
        raise KeyError(f"unknown signal {signal!r}")
    if sg.is_input_signal(signal):
        raise ValueError(f"signal {signal!r} is an input; it has no next-state function")

    on_codes, off_codes = _classify_codes(sg, signal)
    overlap = on_codes & off_codes
    if overlap:
        raise CSCViolationError(
            f"signal {signal!r} has {len(overlap)} codes with contradictory next values; "
            "solve CSC before extracting logic"
        )
    return sorted(on_codes), sorted(off_codes)


def function_from_codes(
    sg: StateGraph, signal: str, on_set: List[Code], off_set: List[Code]
) -> NextStateFunction:
    """Minimise pre-classified ON/OFF sets into a :class:`NextStateFunction`.

    The *minimisation* half of :func:`extract_next_state_function`.
    """
    cover = minimize_cover(on_set, off_set, width=len(sg.signals))
    return NextStateFunction(
        signal=signal,
        inputs=list(sg.signals),
        on_set=list(on_set),
        off_set=list(off_set),
        cover=cover,
    )


def extract_next_state_function(sg: StateGraph, signal: str) -> NextStateFunction:
    """Extract and minimise the next-state function of ``signal``.

    Raises :class:`CSCViolationError` when some reachable code requires
    both next values — i.e. when a CSC conflict involves ``signal``.
    Unreachable codes are don't cares.
    """
    on_codes, off_codes = classify_codes(sg, signal)
    return function_from_codes(sg, signal, on_codes, off_codes)


def extract_all_functions(sg: StateGraph) -> Dict[str, NextStateFunction]:
    """Next-state functions of every non-input signal."""
    return {
        signal: extract_next_state_function(sg, signal)
        for signal in sg.non_input_signals
    }
