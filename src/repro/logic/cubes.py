"""Cubes and covers for two-level logic.

A *cube* over ``n`` variables assigns each variable one of ``0``, ``1`` or
``-`` (don't care); it denotes the conjunction of the corresponding
literals.  A *cover* is a list of cubes denoting their disjunction.  Cubes
are stored as a pair of bit masks (``care``, ``value``) so the containment
and intersection tests used by the minimiser are single integer
operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

Minterm = Tuple[int, ...]


@dataclass(frozen=True)
class Cube:
    """A product term over ``width`` binary variables."""

    width: int
    care: int
    value: int

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        if self.care & ~mask:
            raise ValueError("care mask wider than the declared width")
        if self.value & ~self.care:
            raise ValueError("value bits set outside the care mask")

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_minterm(cls, minterm: Sequence[int]) -> "Cube":
        width = len(minterm)
        care = (1 << width) - 1
        value = 0
        for position, bit in enumerate(minterm):
            if bit not in (0, 1):
                raise ValueError("minterm entries must be 0 or 1")
            if bit:
                value |= 1 << position
        return cls(width, care, value)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse ``"1-0"`` style cube strings (index 0 is the leftmost)."""
        width = len(text)
        care = value = 0
        for position, char in enumerate(text):
            if char == "-":
                continue
            care |= 1 << position
            if char == "1":
                value |= 1 << position
            elif char != "0":
                raise ValueError(f"invalid cube character {char!r}")
        return cls(width, care, value)

    @classmethod
    def full(cls, width: int) -> "Cube":
        """The universal cube (no literals)."""
        return cls(width, 0, 0)

    # -- queries ---------------------------------------------------------
    def literal_count(self) -> int:
        return bin(self.care).count("1")

    def literal(self, position: int) -> str:
        """``"0"``, ``"1"`` or ``"-"`` for the given variable position."""
        if not (self.care >> position) & 1:
            return "-"
        return "1" if (self.value >> position) & 1 else "0"

    def contains_minterm(self, minterm: Sequence[int]) -> bool:
        packed = 0
        for position, bit in enumerate(minterm):
            if bit:
                packed |= 1 << position
        return (packed & self.care) == self.value

    def contains_cube(self, other: "Cube") -> bool:
        """True iff every minterm of ``other`` is a minterm of this cube."""
        if self.width != other.width:
            raise ValueError("cube widths differ")
        if self.care & ~other.care:
            return False
        return (other.value & self.care) == self.value

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one minterm."""
        if self.width != other.width:
            raise ValueError("cube widths differ")
        common = self.care & other.care
        return (self.value & common) == (other.value & common)

    def without_literal(self, position: int) -> "Cube":
        """The cube with the literal at ``position`` dropped (expanded)."""
        mask = ~(1 << position)
        return Cube(self.width, self.care & mask, self.value & mask)

    def to_string(self) -> str:
        return "".join(self.literal(position) for position in range(self.width))

    def to_expression(self, names: Sequence[str]) -> str:
        """Render as a product of literals, e.g. ``a & !b``."""
        parts: List[str] = []
        for position in range(self.width):
            literal = self.literal(position)
            if literal == "1":
                parts.append(names[position])
            elif literal == "0":
                parts.append(f"!{names[position]}")
        return " & ".join(parts) if parts else "1"

    def __str__(self) -> str:
        return self.to_string()


class Cover:
    """A disjunction of cubes (sum of products)."""

    def __init__(self, width: int, cubes: Iterable[Cube] = ()) -> None:
        self.width = width
        self.cubes: List[Cube] = []
        for cube in cubes:
            self.add(cube)

    def add(self, cube: Cube) -> None:
        if cube.width != self.width:
            raise ValueError("cube width does not match cover width")
        self.cubes.append(cube)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def literal_count(self) -> int:
        """Total number of literals — the area proxy used by Table 2."""
        return sum(cube.literal_count() for cube in self.cubes)

    def contains_minterm(self, minterm: Sequence[int]) -> bool:
        return any(cube.contains_minterm(minterm) for cube in self.cubes)

    def intersects_minterms(self, minterms: Iterable[Minterm]) -> bool:
        return any(self.contains_minterm(minterm) for minterm in minterms)

    def to_expression(self, names: Sequence[str]) -> str:
        if not self.cubes:
            return "0"
        return " | ".join(f"({cube.to_expression(names)})" for cube in self.cubes)

    def to_strings(self) -> List[str]:
        return [cube.to_string() for cube in self.cubes]

    def __repr__(self) -> str:
        return f"Cover(width={self.width}, cubes={self.to_strings()})"
