"""Per-signal complex-gate implementations and circuit-level estimates.

The paper approximates circuit complexity by the number of *trigger
signals* of each excitation region (Section 5) and reports post-synthesis
area in Table 2.  This module provides both figures for a CSC-satisfying
state graph: trigger-signal counts straight from the state graph, and the
literal count of the minimised next-state covers as the area proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.excitation import excitation_regions, trigger_events
from repro.logic.nextstate import NextStateFunction, extract_next_state_function
from repro.stg.signals import SignalEdge
from repro.stg.state_graph import StateGraph


@dataclass
class SignalImplementation:
    """The complex gate driving one non-input signal."""

    signal: str
    function: NextStateFunction
    trigger_signals: Set[str] = field(default_factory=set)
    support: Set[str] = field(default_factory=set)

    @property
    def literal_count(self) -> int:
        return self.function.literal_count

    @property
    def cube_count(self) -> int:
        return self.function.cube_count

    def expression(self) -> str:
        return self.function.expression()


@dataclass
class CircuitEstimate:
    """Aggregate implementation estimate for a whole controller."""

    name: str
    implementations: Dict[str, SignalImplementation]

    @property
    def total_literals(self) -> int:
        """The area proxy reported in the Table 2 reproduction."""
        return sum(impl.literal_count for impl in self.implementations.values())

    @property
    def total_cubes(self) -> int:
        return sum(impl.cube_count for impl in self.implementations.values())

    @property
    def total_triggers(self) -> int:
        """The paper's own complexity estimate: trigger signals summed over
        all excitation regions of all non-input signals."""
        return sum(len(impl.trigger_signals) for impl in self.implementations.values())

    def table_row(self) -> Dict[str, int]:
        return {
            "literals": self.total_literals,
            "cubes": self.total_cubes,
            "triggers": self.total_triggers,
            "signals": len(self.implementations),
        }


def _support(function: NextStateFunction) -> Set[str]:
    """Signals actually appearing in the minimised cover."""
    support: Set[str] = set()
    for cube in function.cover:
        for position, name in enumerate(function.inputs):
            if cube.literal(position) != "-":
                support.add(name)
    return support


def trigger_signal_count(sg: StateGraph, signal: str) -> int:
    """Number of distinct trigger signals over all ERs of ``signal``.

    A trigger of an excitation region is a signal labelling a transition
    that enters the region; it necessarily appears in the gate's fan-in.
    """
    triggers: Set[str] = set()
    for direction_edge in (SignalEdge.rise(signal), SignalEdge.fall(signal)):
        if direction_edge not in sg.ts.events:
            continue
        for region in excitation_regions(sg.ts, direction_edge):
            for event in trigger_events(sg.ts, region):
                if isinstance(event, SignalEdge):
                    triggers.add(event.signal)
    return len(triggers)


def estimate_circuit(sg: StateGraph, name: str = "") -> CircuitEstimate:
    """Estimate the implementation of every non-input signal.

    Requires CSC; propagates :class:`~repro.logic.nextstate.CSCViolationError`
    otherwise.
    """
    implementations: Dict[str, SignalImplementation] = {}
    for signal in sg.non_input_signals:
        function = extract_next_state_function(sg, signal)
        triggers: Set[str] = set()
        for edge in (SignalEdge.rise(signal), SignalEdge.fall(signal)):
            if edge not in sg.ts.events:
                continue
            for region in excitation_regions(sg.ts, edge):
                for event in trigger_events(sg.ts, region):
                    if isinstance(event, SignalEdge):
                        triggers.add(event.signal)
        implementations[signal] = SignalImplementation(
            signal=signal,
            function=function,
            trigger_signals=triggers,
            support=_support(function),
        )
    return CircuitEstimate(name=name or sg.name, implementations=implementations)
