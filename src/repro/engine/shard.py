"""In-solve sharding: the worker pool behind ``SolverSettings.search_jobs``.

The batch engine of :mod:`repro.engine.batch` parallelises *across* STGs;
this module parallelises *inside* one solve.  The Figure-4 frontier
search (:mod:`repro.core.search`) separates candidate **generation**
(ordered, stateful: the seen-set and the frontier ranking) from candidate
**evaluation** (pure: a block bitmask in, an
:class:`~repro.core.indexed.IndexedEvaluation` out), and ships the
evaluation batches of one search through the pool provided here.  Because
every evaluation is a pure function of the search's
:class:`~repro.core.indexed.EvalKernel` and results are merged back in
generation order, a sharded search is byte-identical to a serial one at
any worker count — ``search_jobs`` is performance-only and therefore
excluded from the request fingerprint.

Two executor kinds:

``fork`` (default where available)
    A per-search :class:`~concurrent.futures.ProcessPoolExecutor` on the
    ``fork`` start method.  The kernel is *inherited*, not pickled: it is
    registered in a module-level table before the pool is created, and
    the lazily-forked workers see it via copy-on-write memory.  Tasks and
    results are therefore just lists of ``int`` masks and compact
    evaluation records.  Fork cost is paid once per insertion search
    (a few milliseconds), not per batch.

``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` fallback for
    platforms without ``fork`` (and for tests that want the sharded
    merge path without process overhead).  GIL-bound — no speedup — but
    it exercises exactly the same generate/evaluate/merge code, and the
    kernel (with the indexed caches it snapshots) is shared in-process
    instead of re-shipped.

The **pool-budget rule** (:func:`shard_budget`) keeps the two
parallelism levels from oversubscribing each other: when ``encode_many``
runs ``jobs`` STG-level workers, each worker's ``search_jobs`` is
clamped so that ``jobs × search_jobs`` never exceeds the machine budget
(``os.cpu_count()`` by default).  A single-STG run (``jobs == 1``) is
never clamped — an explicit ``search_jobs`` is taken at its word.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.indexed import EvalKernel, IndexedEvaluation, evaluate_candidates
from repro.obs import adopt_trace_context, get_logger, span, trace_context
from repro.utils.deadline import deadline, remaining_time

_log = get_logger("engine.shard")

__all__ = [
    "SHARD_MODES",
    "SearchPool",
    "search_pool",
    "shard_budget",
    "shard_mode",
    "use_shard_mode",
]

#: Valid shard executor modes (``"auto"`` picks fork where available).
SHARD_MODES = ("auto", "fork", "thread")

#: Kernels visible to fork-started workers, keyed by a token unique to
#: the owning pool.  Entries are inserted before the pool forks and
#: removed when it closes, so concurrent sharded searches in one process
#: (e.g. service threads) cannot clobber each other.
_PARENT_KERNELS: Dict[int, EvalKernel] = {}
_token_counter = itertools.count(1)

_state = threading.local()


def shard_mode() -> str:
    """The shard executor mode active in this thread (default ``auto``)."""
    return getattr(_state, "mode", "auto")


@contextmanager
def use_shard_mode(mode: str) -> Iterator[None]:
    """Temporarily force the shard executor kind (current thread).

    ``"thread"`` is what the hypothesis stress tests use: same sharded
    code path, no fork cost per example.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}")
    previous = shard_mode()
    _state.mode = mode
    try:
        yield
    finally:
        _state.mode = previous


def shard_budget(jobs: int, search_jobs: int, budget: Optional[int] = None) -> int:
    """Clamp ``search_jobs`` so ``jobs × search_jobs`` fits the machine.

    ``jobs`` is the STG-level worker count of the surrounding batch;
    ``budget`` defaults to ``os.cpu_count()``.  With ``jobs == 1`` the
    request is returned unchanged (no second level to collide with); the
    budget never clamps below 1.
    """
    search_jobs = max(1, int(search_jobs))
    jobs = max(1, int(jobs))
    if jobs == 1 or search_jobs == 1:
        return search_jobs
    if budget is None:
        budget = os.cpu_count() or 1
    budget = max(jobs, int(budget))
    effective = max(1, min(search_jobs, budget // jobs))
    if effective < search_jobs:
        # Never silent: operators asked for jobs × search_jobs workers
        # and are getting fewer — say so and count it.
        _log.warning(
            "search_jobs_clamped",
            requested=search_jobs,
            effective=effective,
            jobs=jobs,
            budget=budget,
        )
        _clamp_counter().inc()
    return effective


def _clamp_counter():
    from repro.obs import REGISTRY

    return REGISTRY.counter(
        "pyetrify_shard_clamps_total",
        "Times the pool-budget rule clamped a requested search_jobs",
    )


def _fork_worker(task) -> List[Optional[IndexedEvaluation]]:
    """Worker body in fork mode: look the kernel up by token and batch.

    The submitting thread's *remaining* wall-clock budget rides along in
    the task and is re-armed here, so a per-job timeout keeps its
    one-evaluation poll latency inside the workers (worker threads start
    with no deadline state, and relying on fork inheriting the parent's
    thread-local deadline would be fragile).
    """
    token, masks, remaining, obs_ctx = task
    adopt_trace_context(obs_ctx)  # spawn-safe; a fork child inherits anyway
    with deadline(remaining), span("shard.evaluate", masks=len(masks)):
        return evaluate_candidates(_PARENT_KERNELS[token], masks)


def _thread_worker(kernel: EvalKernel, masks, remaining) -> List[Optional[IndexedEvaluation]]:
    """Worker body in thread mode (same deadline re-arming as fork)."""
    with deadline(remaining), span("shard.evaluate", masks=len(masks)):
        return evaluate_candidates(kernel, masks)


class SearchPool:
    """One search's evaluation pool (see module docstring).

    ``evaluate_batch`` splits a mask list into contiguous chunks, runs
    them on the executor and reassembles the results in input order —
    the merge order, and therefore the search outcome, never depends on
    worker scheduling.
    """

    def __init__(
        self,
        executor,
        submit_task: Callable[[Sequence[int]], object],
        jobs: int,
        kind: str,
    ) -> None:
        self._executor = executor
        self._submit = submit_task
        self.jobs = jobs
        self.kind = kind
        #: Below this many masks a round trip costs more than it saves;
        #: the search evaluates such batches inline.
        self.min_batch = max(2 * jobs, 16)

    def evaluate_batch(self, masks: Sequence[int]) -> List[Optional[IndexedEvaluation]]:
        """Evaluate ``masks`` on the pool; ``result[i]`` matches ``masks[i]``."""
        if not masks:
            return []
        chunk_count = min(self.jobs * 2, len(masks))
        chunks: List[Sequence[int]] = []
        base, extra = divmod(len(masks), chunk_count)
        start = 0
        for i in range(chunk_count):
            end = start + base + (1 if i < extra else 0)
            chunks.append(masks[start:end])
            start = end
        futures = [self._submit(chunk) for chunk in chunks]
        results: List[Optional[IndexedEvaluation]] = []
        for future in futures:
            results.extend(future.result())
        return results


@contextmanager
def search_pool(kernel: EvalKernel, jobs: int) -> Iterator[Optional[SearchPool]]:
    """A :class:`SearchPool` over ``kernel`` with ``jobs`` workers.

    Yields ``None`` for ``jobs <= 1`` (the search then runs its plain
    serial path).  Mode selection follows :func:`shard_mode`: ``fork``
    where the platform offers it, else (or when forced) ``thread``.
    """
    jobs = max(1, int(jobs))
    if jobs == 1:
        yield None
        return
    mode = shard_mode()
    if mode == "auto":
        # Forking a multi-threaded process is unsafe (a child can inherit
        # a lock held by another thread — sqlite, malloc, logging — and
        # deadlock; CPython 3.12+ warns about exactly this).  That is the
        # situation inside the service process, whose HTTP handler
        # threads run next to the dispatcher.  Auto therefore forks only
        # from a single-threaded process — batch workers and plain CLI
        # solves — and falls back to threads elsewhere; callers that
        # know their threads are fork-safe can force `use_shard_mode("fork")`.
        fork_ok = (
            "fork" in multiprocessing.get_all_start_methods()
            and threading.active_count() == 1
        )
        mode = "fork" if fork_ok else "thread"
    if mode == "fork" and "fork" not in multiprocessing.get_all_start_methods():
        mode = "thread"

    _log.debug("pool_open", mode=mode, jobs=jobs)
    if mode == "thread":
        executor = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-shard"
        )
        try:
            yield SearchPool(
                executor,
                lambda chunk: executor.submit(
                    _thread_worker, kernel, chunk, remaining_time()
                ),
                jobs,
                "thread",
            )
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        return

    token = next(_token_counter)
    _PARENT_KERNELS[token] = kernel
    executor = ProcessPoolExecutor(
        max_workers=jobs, mp_context=multiprocessing.get_context("fork")
    )
    try:
        yield SearchPool(
            executor,
            lambda chunk: executor.submit(
                _fork_worker, (token, chunk, remaining_time(), trace_context())
            ),
            jobs,
            "fork",
        )
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
        _PARENT_KERNELS.pop(token, None)
