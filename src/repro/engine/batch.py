"""Batch encoding: many STGs through a process pool.

``encode_many`` is the engine's entry point: it encodes a sequence of
STGs either in-process (``jobs=1``) or on a ``ProcessPoolExecutor``
(``jobs>1``), returning lightweight JSON-serialisable
:class:`BatchItem` records in input order.  Per-STG work is independent,
results are deterministic, and a parallel run is byte-identical to a
serial run of the same inputs (the determinism tests assert exactly
that).

Each item runs through one of three *engines* (chosen per request by
``SolverSettings.engine`` or for the whole batch by the ``engine``
argument): ``"explicit"`` is the classical enumerate-then-solve
pipeline; ``"symbolic"`` never enumerates the state space up front —
census and CSC conflict detection run on BDDs
(:mod:`repro.symbolic`) and the explicit solver is only bridged in for
a conflict core that fits the state budget; ``"auto"`` takes a symbolic
census first and uses the explicit pipeline only when the state count
fits within ``max_states``.

``run_benchmark_suite`` applies it to the built-in benchmark library
(``pyetrify bench --all --jobs N [--engine symbolic]``), using each
case's own solver settings so relaxed benchmarks get
``allow_input_delay`` just as the table harnesses do.  With a symbolic
engine the sweep also admits the Table-1 rows that are infeasible
explicitly (``explicit_ok=False``) — the workload this tier opens up.
"""

from __future__ import annotations

import contextlib
import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.bench_stg.library import BenchmarkCase, TABLE1_CASES, TABLE2_CASES
from repro.core.planes import KERNELS
from repro.core.solver import ENGINES, SolverSettings
from repro.engine.caches import use_caches
from repro.engine.shard import shard_budget
from repro.obs import (
    adopt_trace_context,
    collect_phases,
    span,
    trace_context,
    use_progress_hook,
)
from repro.stg.stg import STG
from repro.utils.deadline import DeadlineExceeded, deadline
from repro.utils.timing import Stopwatch


@dataclass
class BatchItem:
    """Outcome of encoding one STG (JSON-serialisable throughout).

    ``status`` is ``"ok"`` for a completed encoding (solved or provably
    unsolvable within the settings), ``"timeout"`` when the per-job
    wall-clock bound of :func:`encode_many` expired, and ``"error"`` when
    the worker raised.
    """

    name: str
    solved: bool = False
    summary: Dict[str, object] = field(default_factory=dict)
    table_row: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0
    error: Optional[str] = None
    status: str = "ok"
    engine: str = "explicit"
    census: Optional[Dict[str, object]] = None  # symbolic/auto engines only
    phases: Optional[Dict[str, float]] = None  # span-derived timing, opt-in
    synth: Optional[Dict[str, object]] = None  # synthesis tier output, opt-in

    def fingerprint(self) -> Dict[str, object]:
        """Result identity minus timing (for serial-vs-parallel checks).

        ``census`` stays out: its BDD statistics are deterministic but
        its seconds are not, and the census is bookkeeping about *how*
        the result was obtained, not part of the result.  ``phases`` is
        pure timing and stays out for the same reason.  ``synth`` stays
        out too: the encoding fingerprint must be byte-identical with
        synthesis on or off (the netlist is a downstream product of the
        encoding, pinned by its own bench suite).
        """
        flat = {key: value for key, value in self.summary.items() if key != "cpu_seconds"}
        row = {key: value for key, value in self.table_row.items() if key != "cpu"}
        return {
            "summary": flat,
            "table_row": row,
            "error": self.error,
            "status": self.status,
            "engine": self.engine,
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "solved": self.solved,
            "summary": self.summary,
            "table_row": self.table_row,
            "seconds": round(self.seconds, 3),
            "error": self.error,
            "status": self.status,
            "engine": self.engine,
            "census": self.census,
            "phases": self.phases,
            "synth": self.synth,
        }


@dataclass
class BatchResult:
    """All items of one ``encode_many`` run plus wall-clock accounting."""

    items: List[BatchItem]
    jobs: int
    wall_seconds: float
    use_caches: bool = True

    @property
    def solved_count(self) -> int:
        return sum(1 for item in self.items if item.solved)

    def fingerprints(self) -> List[Dict[str, object]]:
        return [item.fingerprint() for item in self.items]

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 3),
            "use_caches": self.use_caches,
            "solved": self.solved_count,
            "total": len(self.items),
            "items": [item.as_dict() for item in self.items],
        }


def resolve_engine(
    settings: Optional[SolverSettings], override: Optional[str] = None
) -> str:
    """The engine one request runs through (override > settings > explicit)."""
    engine = override if override is not None else getattr(settings, "engine", None)
    engine = engine or "explicit"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def budgeted_settings(
    settings: Optional[SolverSettings],
    jobs: int,
    search_jobs: Optional[int] = None,
    budget: Optional[int] = None,
) -> Optional[SolverSettings]:
    """Settings with ``search_jobs`` overridden and budget-clamped.

    The pool-budget rule (:func:`repro.engine.shard.shard_budget`): with
    ``jobs`` STG-level workers, the per-request in-solve worker count is
    clamped so ``jobs × search_jobs`` never exceeds the machine budget.
    Clamping never changes results — a sharded search is byte-identical
    at any worker count — but it does change effective parallelism, so
    :func:`shard_budget` logs a structured warning (and counts it in the
    metrics registry) whenever it reduces a request.  Returns the input
    object untouched when nothing changes.
    """
    requested = search_jobs
    if requested is None:
        requested = settings.search_jobs if settings is not None else 1
    effective = shard_budget(jobs, requested, budget=budget)
    current = settings.search_jobs if settings is not None else 1
    if effective == current:
        return settings
    if settings is None:
        settings = SolverSettings()
    return dataclasses.replace(settings, search_jobs=effective)


def _encode_one(payload) -> BatchItem:
    """Worker body: encode one STG and reduce the report to a BatchItem.

    Module-level so it pickles for the process pool; ``payload`` carries
    everything the worker needs (the cache switch included, so a
    cache-disabled baseline run stays cache-free inside the workers).
    The optional eighth element is the observability envelope built by
    :func:`_obs_envelope` — trace context to adopt, a phase-collection
    flag, and a progress spec the service worker uses to stream live
    solver progress into the durable ``job_events`` feed.  All of it is
    presentation-only: the encoded result is byte-identical with or
    without the envelope.
    """
    stg, settings, estimate_logic, max_states, caches_on, timeout, engine = payload[:7]
    obs = payload[7] if len(payload) > 7 else None
    synth = bool(payload[8]) if len(payload) > 8 else False

    phases_acc = None
    with contextlib.ExitStack() as stack:
        if obs:
            adopt_trace_context(obs.get("trace"))
            spec = obs.get("progress")
            if spec:
                # Deferred: the engine must stay importable without the
                # service tier; only a service-built payload reaches here.
                from repro.service.progress import JobProgressEmitter

                emitter = JobProgressEmitter(*spec)
                stack.callback(emitter.close)
                stack.enter_context(use_progress_hook(emitter))
            if obs.get("phases"):
                phases_acc = stack.enter_context(collect_phases())
        stack.enter_context(span("encode", name=stg.name, engine=engine))
        item = _encode_item(
            stg, settings, estimate_logic, max_states, caches_on, timeout, engine, synth
        )
    if phases_acc:
        item.phases = {name: round(seconds, 6) for name, seconds in sorted(phases_acc.items())}
    return item


def _encode_item(
    stg, settings, estimate_logic, max_states, caches_on, timeout, engine, synth=False
) -> BatchItem:
    """The encode proper (no observability scaffolding)."""
    from repro.api import encode_stg  # deferred: repro.api imports this package

    watch = Stopwatch().start()
    try:
        with use_caches(caches_on), deadline(timeout):
            if engine == "explicit":
                report = encode_stg(
                    stg,
                    settings=settings,
                    estimate_logic=estimate_logic,
                    max_states=max_states,
                    synth=synth,
                )
                return BatchItem(
                    name=stg.name,
                    solved=report.solved,
                    summary=report.result.summary(),
                    table_row=report.table_row(),
                    seconds=report.total_seconds,
                    engine=engine,
                    synth=_synth_dict(report, synth),
                )
            return _encode_symbolic(
                stg, settings, estimate_logic, max_states, engine, watch, synth
            )
    except DeadlineExceeded:
        return BatchItem(
            name=stg.name,
            seconds=watch.stop(),
            error=f"wall-clock timeout after {timeout}s",
            status="timeout",
            engine=engine,
        )
    except Exception as error:  # pragma: no cover - defensive per-item isolation
        return BatchItem(
            name=stg.name,
            error=f"{type(error).__name__}: {error}",
            status="error",
            engine=engine,
        )


def _synth_dict(report, synth: bool) -> Optional[Dict[str, object]]:
    """The JSON-safe ``synth`` field of a BatchItem (``None`` unless asked)."""
    if not synth:
        return None
    if report.synth is not None:
        return report.synth.as_dict()
    return {"status": "skipped", "reason": "CSC not solved"}


def _obs_envelope(phases: bool = False, progress=None) -> Optional[Dict[str, object]]:
    """The observability element of an ``_encode_one`` payload.

    ``None`` when there is nothing to carry, so the common untraced path
    ships (and pickles) nothing extra.  ``progress`` is the
    ``(queue_path, job_id, request_id)`` spec understood by
    :class:`repro.service.progress.JobProgressEmitter`.
    """
    ctx = trace_context()
    if ctx is None and not phases and progress is None:
        return None
    envelope: Dict[str, object] = {}
    if ctx is not None:
        envelope["trace"] = ctx
    if phases:
        envelope["phases"] = True
    if progress is not None:
        envelope["progress"] = progress
    return envelope


def _encode_symbolic(
    stg: STG,
    settings: Optional[SolverSettings],
    estimate_logic: bool,
    max_states: Optional[int],
    engine: str,
    watch: Stopwatch,
    synth: bool = False,
) -> BatchItem:
    """The ``engine="symbolic"`` / ``"auto"`` worker path.

    ``auto`` takes a symbolic census first: a state count within the
    ``max_states`` budget routes the request through the full explicit
    pipeline (identical results to ``engine="explicit"``, census
    attached); a larger one stays symbolic.  ``symbolic`` always runs
    the BDD front half — detection everywhere, the explicit solver only
    through the hybrid bridge's materialized conflict core.
    """
    from repro.api import encode_stg  # deferred: repro.api imports this package
    from repro.symbolic import DEFAULT_STATE_BUDGET, SymbolicStateGraph, symbolic_encode

    ssg = None
    if engine == "auto":
        ssg = SymbolicStateGraph(stg)
        census = ssg.census()
        budget = max_states if max_states is not None else DEFAULT_STATE_BUDGET
        if census.states <= budget:
            report = encode_stg(
                stg,
                settings=settings,
                estimate_logic=estimate_logic,
                max_states=max_states,
                synth=synth,
            )
            return BatchItem(
                name=stg.name,
                solved=report.solved,
                summary=report.result.summary(),
                table_row=report.table_row(),
                seconds=watch.stop(),
                engine=engine,
                census=census.as_dict(),
                synth=_synth_dict(report, synth),
            )
    outcome = symbolic_encode(stg, settings=settings, max_states=max_states, ssg=ssg)
    skipped = (
        {"status": "skipped", "reason": "synthesis requires an enumerable state graph"}
        if synth
        else None
    )
    return BatchItem(
        name=stg.name,
        solved=outcome.solved,
        summary=outcome.summary(),
        table_row=outcome.table_row(),
        seconds=watch.stop(),
        engine=engine,
        census=outcome.census.as_dict(),
        synth=skipped,
    )


def encode_many(
    stgs: Sequence[STG],
    settings: Union[SolverSettings, Sequence[Optional[SolverSettings]], None] = None,
    jobs: int = 1,
    estimate_logic: bool = True,
    max_states: Optional[int] = None,
    caches_on: bool = True,
    timeout: Optional[float] = None,
    engine: Optional[str] = None,
    search_jobs: Optional[int] = None,
    kernel: Optional[str] = None,
    phases: bool = False,
    synth: bool = False,
) -> BatchResult:
    """Encode many STGs, optionally in parallel worker processes.

    Parameters
    ----------
    stgs:
        The input specifications; results come back in the same order.
    settings:
        One :class:`SolverSettings` applied to every STG, or a sequence
        aligned with ``stgs`` (``None`` entries use solver defaults).
    jobs:
        Number of worker processes; ``jobs <= 1`` encodes in-process.
        Parallel results are byte-identical to serial ones — per-STG
        work shares nothing and every tie-break in the solver is
        deterministic.
    estimate_logic / max_states:
        Forwarded to :func:`repro.api.encode_stg`.
    caches_on:
        Engine-cache switch forwarded into the workers; disabling it
        yields the legacy recompute-everything behaviour (used as the
        baseline by ``benchmarks/bench_batch_engine.py``).
    timeout:
        Per-job wall-clock bound in seconds (``None`` = unbounded).  The
        solver's hot loops poll a cooperative deadline
        (:mod:`repro.utils.deadline`); a job that exceeds it comes back
        as ``status="timeout"`` instead of hanging its worker, so one
        pathological STG cannot stall a whole batch.  The bound applies
        per item, not to the batch as a whole.  The symbolic tier polls
        the same deadline, so symbolic jobs time out cooperatively too.
    engine:
        ``"explicit"``, ``"symbolic"`` or ``"auto"`` for the whole
        batch; ``None`` (default) respects each request's
        ``SolverSettings.engine``.  For symbolic engines ``max_states``
        doubles as the hybrid materialization budget.
    search_jobs:
        In-solve sharding width applied to the whole batch; ``None``
        (default) respects each request's ``SolverSettings.search_jobs``.
        Either way the value is clamped by the pool-budget rule
        (:func:`budgeted_settings`) so ``jobs × search_jobs`` never
        oversubscribes the machine; results are byte-identical at any
        width.
    kernel:
        Block-evaluation kernel applied to the whole batch
        (``"bigint"``/``"planes"``/``"auto"``, see
        :mod:`repro.core.planes`); ``None`` (default) respects each
        request's ``SolverSettings.kernel``.  Performance-only: both
        kernels produce byte-identical results.
    phases:
        Collect per-phase span timings in each item's ``phases`` field
        (``BENCH_*.json`` breakdowns).  Presentation-only: excluded from
        fingerprints like every other timing.
    synth:
        Run the synthesis tier on every solved explicit encoding (see
        :func:`repro.synth.synthesize`): each item's ``synth`` field
        carries the verified netlist (equations/Verilog/BLIF plus the
        gate-level verification report), or a skip record for unsolved /
        symbolic-only outcomes.  Encoding fingerprints are unaffected.
    """
    stgs = list(stgs)
    if isinstance(settings, SolverSettings) or settings is None:
        per_stg: List[Optional[SolverSettings]] = [settings] * len(stgs)
    else:
        per_stg = list(settings)
        if len(per_stg) != len(stgs):
            raise ValueError(
                f"got {len(per_stg)} settings for {len(stgs)} STGs; "
                "pass one SolverSettings or one per STG"
            )
    # The budget clamp keys on the worker count that will actually run:
    # the executor below spawns min(jobs, len(stgs)) workers, and a
    # batch of fewer than two items executes serially regardless of
    # ``jobs`` — either way the solves keep the sharding width the real
    # process count affords.
    effective_jobs = min(jobs, len(stgs)) if (jobs > 1 and len(stgs) >= 2) else 1
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    obs = _obs_envelope(phases=phases)
    payloads = []
    for stg, case_settings in zip(stgs, per_stg):
        case_settings = budgeted_settings(case_settings, effective_jobs, search_jobs)
        if kernel is not None and (
            case_settings is None or case_settings.kernel != kernel
        ):
            case_settings = dataclasses.replace(
                case_settings or SolverSettings(), kernel=kernel
            )
        payloads.append(
            (
                stg,
                case_settings,
                estimate_logic,
                max_states,
                caches_on,
                timeout,
                resolve_engine(case_settings, engine),
                obs,
                synth,
            )
        )

    watch = Stopwatch().start()
    if jobs <= 1 or len(payloads) < 2:
        items = [_encode_one(payload) for payload in payloads]
    else:
        workers = min(jobs, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            items = list(pool.map(_encode_one, payloads))
    return BatchResult(
        items=items,
        jobs=max(1, jobs),
        wall_seconds=watch.stop(),
        use_caches=caches_on,
    )


# ----------------------------------------------------------------------
# benchmark-library driver
# ----------------------------------------------------------------------
def _size_proxy(case: BenchmarkCase) -> int:
    """Deterministic STG-size proxy used to pick the smallest cases."""
    stats = case.build().stats()
    return int(stats["places"]) + int(stats["transitions"])


def suite_cases(table: str = "table2", engine: str = "explicit") -> List[BenchmarkCase]:
    """The runnable cases of one table (or of both, ``table="all"``).

    The explicit engine can only run cases that are both solvable and
    enumerable (``solve`` and ``explicit_ok``).  The symbolic engines
    admit every case: ``explicit_ok=False`` rows get a symbolic census
    and CSC verdict, and ``solve=False`` rows run detection-only (the
    suite zeroes their signal budget).
    """
    if table == "table1":
        cases = TABLE1_CASES
    elif table == "table2":
        cases = TABLE2_CASES
    elif table == "all":
        cases = TABLE2_CASES + TABLE1_CASES
    else:
        raise ValueError(f"unknown table {table!r}")
    if engine == "explicit":
        return [case for case in cases if case.solve and case.explicit_ok]
    return list(cases)


def select_smallest_cases(
    cases: Sequence[BenchmarkCase], count: int
) -> List[BenchmarkCase]:
    """The ``count`` smallest cases by places+transitions (ties by name)."""
    ranked = sorted(cases, key=lambda case: (_size_proxy(case), case.name))
    return ranked[: max(0, count)]


def run_benchmark_suite(
    table: str = "table2",
    jobs: int = 1,
    smallest: Optional[int] = None,
    frontier_width: int = 16,
    brick_mode: Optional[str] = None,
    max_signals: Optional[int] = None,
    enlarge_concurrency: bool = False,
    verbose: bool = False,
    max_states: Optional[int] = 200000,
    caches_on: bool = True,
    timeout: Optional[float] = None,
    engine: str = "explicit",
    search_jobs: Optional[int] = None,
    kernel: Optional[str] = None,
    phases: bool = False,
    synth: bool = False,
) -> BatchResult:
    """Encode the built-in benchmark library (``pyetrify bench --all``).

    Each case runs with its own library settings
    (:meth:`BenchmarkCase.solver_settings`), so strict cases stay
    input-preserving and relaxed ones get ``allow_input_delay`` — the
    same regime as the Table-1/Table-2 harnesses.  ``smallest`` keeps
    only the N smallest STGs (the CI smoke job uses 3).  The remaining
    knobs overlay the per-case settings when supplied, so the CLI's
    tuning flags apply in ``--all`` mode too; ``max_states`` bounds
    explicit state-graph construction exactly as in single-STG mode.

    With ``engine="symbolic"`` / ``"auto"`` the sweep also includes the
    cases the explicit engine must skip: ``explicit_ok=False`` rows get
    their census and CSC verdict symbolically, and ``solve=False`` rows
    run with a zero signal budget (detection-only) so the sweep stays
    within a benchmark-sized time budget — except rows tagged
    ``symbolic_solve``, which keep their budget and are solved end to
    end by the BDD-space insertion path (``mode="symbolic-insert"``).
    """
    cases = suite_cases(table, engine=engine)
    if smallest is not None:
        cases = select_smallest_cases(cases, smallest)
    stgs = [case.build() for case in cases]
    settings = []
    for case in cases:
        case_settings = case.solver_settings(frontier_width=frontier_width)
        case_settings.engine = engine
        if brick_mode is not None:
            case_settings.search.brick_mode = brick_mode
        if max_signals is not None:
            case_settings.max_signals = max_signals
        if engine != "explicit" and not case.solve:
            if case.symbolic_solve:
                # A conflict core beyond the explicit-harness regime but
                # within reach of the BDD-space insertion path: keep the
                # signal budget and pin the case's tuned frontier width.
                if case.symbolic_frontier_width is not None:
                    case_settings.search.frontier_width = case.symbolic_frontier_width
            else:
                case_settings.max_signals = 0
        if enlarge_concurrency:
            case_settings.search.enlarge_concurrency = True
        if verbose:
            case_settings.verbose = True
        settings.append(case_settings)
    return encode_many(
        stgs,
        settings=settings,
        jobs=jobs,
        max_states=max_states,
        caches_on=caches_on,
        timeout=timeout,
        engine=engine,
        search_jobs=search_jobs,
        kernel=kernel,
        phases=phases,
        synth=synth,
    )
