"""Batch encoding: many STGs through a process pool.

``encode_many`` is the engine's entry point: it encodes a sequence of
STGs either in-process (``jobs=1``) or on a ``ProcessPoolExecutor``
(``jobs>1``), returning lightweight JSON-serialisable
:class:`BatchItem` records in input order.  Per-STG work is independent,
results are deterministic, and a parallel run is byte-identical to a
serial run of the same inputs (the determinism tests assert exactly
that).

``run_benchmark_suite`` applies it to the built-in benchmark library
(``pyetrify bench --all --jobs N``), using each case's own solver
settings so relaxed benchmarks get ``allow_input_delay`` just as the
table harnesses do.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.bench_stg.library import BenchmarkCase, TABLE1_CASES, TABLE2_CASES
from repro.core.solver import SolverSettings
from repro.engine.caches import use_caches
from repro.stg.stg import STG
from repro.utils.deadline import DeadlineExceeded, deadline
from repro.utils.timing import Stopwatch


@dataclass
class BatchItem:
    """Outcome of encoding one STG (JSON-serialisable throughout).

    ``status`` is ``"ok"`` for a completed encoding (solved or provably
    unsolvable within the settings), ``"timeout"`` when the per-job
    wall-clock bound of :func:`encode_many` expired, and ``"error"`` when
    the worker raised.
    """

    name: str
    solved: bool = False
    summary: Dict[str, object] = field(default_factory=dict)
    table_row: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0
    error: Optional[str] = None
    status: str = "ok"

    def fingerprint(self) -> Dict[str, object]:
        """Result identity minus timing (for serial-vs-parallel checks)."""
        flat = {key: value for key, value in self.summary.items() if key != "cpu_seconds"}
        row = {key: value for key, value in self.table_row.items() if key != "cpu"}
        return {"summary": flat, "table_row": row, "error": self.error, "status": self.status}

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "solved": self.solved,
            "summary": self.summary,
            "table_row": self.table_row,
            "seconds": round(self.seconds, 3),
            "error": self.error,
            "status": self.status,
        }


@dataclass
class BatchResult:
    """All items of one ``encode_many`` run plus wall-clock accounting."""

    items: List[BatchItem]
    jobs: int
    wall_seconds: float
    use_caches: bool = True

    @property
    def solved_count(self) -> int:
        return sum(1 for item in self.items if item.solved)

    def fingerprints(self) -> List[Dict[str, object]]:
        return [item.fingerprint() for item in self.items]

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 3),
            "use_caches": self.use_caches,
            "solved": self.solved_count,
            "total": len(self.items),
            "items": [item.as_dict() for item in self.items],
        }


def _encode_one(payload) -> BatchItem:
    """Worker body: encode one STG and reduce the report to a BatchItem.

    Module-level so it pickles for the process pool; ``payload`` carries
    everything the worker needs (the cache switch included, so a
    cache-disabled baseline run stays cache-free inside the workers).
    """
    stg, settings, estimate_logic, max_states, caches_on, timeout = payload
    from repro.api import encode_stg  # deferred: repro.api imports this package

    watch = Stopwatch().start()
    try:
        with use_caches(caches_on), deadline(timeout):
            report = encode_stg(
                stg,
                settings=settings,
                estimate_logic=estimate_logic,
                max_states=max_states,
            )
    except DeadlineExceeded:
        return BatchItem(
            name=stg.name,
            seconds=watch.stop(),
            error=f"wall-clock timeout after {timeout}s",
            status="timeout",
        )
    except Exception as error:  # pragma: no cover - defensive per-item isolation
        return BatchItem(name=stg.name, error=f"{type(error).__name__}: {error}", status="error")
    return BatchItem(
        name=stg.name,
        solved=report.solved,
        summary=report.result.summary(),
        table_row=report.table_row(),
        seconds=report.total_seconds,
    )


def encode_many(
    stgs: Sequence[STG],
    settings: Union[SolverSettings, Sequence[Optional[SolverSettings]], None] = None,
    jobs: int = 1,
    estimate_logic: bool = True,
    max_states: Optional[int] = None,
    caches_on: bool = True,
    timeout: Optional[float] = None,
) -> BatchResult:
    """Encode many STGs, optionally in parallel worker processes.

    Parameters
    ----------
    stgs:
        The input specifications; results come back in the same order.
    settings:
        One :class:`SolverSettings` applied to every STG, or a sequence
        aligned with ``stgs`` (``None`` entries use solver defaults).
    jobs:
        Number of worker processes; ``jobs <= 1`` encodes in-process.
        Parallel results are byte-identical to serial ones — per-STG
        work shares nothing and every tie-break in the solver is
        deterministic.
    estimate_logic / max_states:
        Forwarded to :func:`repro.api.encode_stg`.
    caches_on:
        Engine-cache switch forwarded into the workers; disabling it
        yields the legacy recompute-everything behaviour (used as the
        baseline by ``benchmarks/bench_batch_engine.py``).
    timeout:
        Per-job wall-clock bound in seconds (``None`` = unbounded).  The
        solver's hot loops poll a cooperative deadline
        (:mod:`repro.utils.deadline`); a job that exceeds it comes back
        as ``status="timeout"`` instead of hanging its worker, so one
        pathological STG cannot stall a whole batch.  The bound applies
        per item, not to the batch as a whole.
    """
    stgs = list(stgs)
    if isinstance(settings, SolverSettings) or settings is None:
        per_stg: List[Optional[SolverSettings]] = [settings] * len(stgs)
    else:
        per_stg = list(settings)
        if len(per_stg) != len(stgs):
            raise ValueError(
                f"got {len(per_stg)} settings for {len(stgs)} STGs; "
                "pass one SolverSettings or one per STG"
            )
    payloads = [
        (stg, case_settings, estimate_logic, max_states, caches_on, timeout)
        for stg, case_settings in zip(stgs, per_stg)
    ]

    watch = Stopwatch().start()
    if jobs <= 1 or len(payloads) < 2:
        items = [_encode_one(payload) for payload in payloads]
    else:
        workers = min(jobs, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            items = list(pool.map(_encode_one, payloads))
    return BatchResult(
        items=items,
        jobs=max(1, jobs),
        wall_seconds=watch.stop(),
        use_caches=caches_on,
    )


# ----------------------------------------------------------------------
# benchmark-library driver
# ----------------------------------------------------------------------
def _size_proxy(case: BenchmarkCase) -> int:
    """Deterministic STG-size proxy used to pick the smallest cases."""
    stats = case.build().stats()
    return int(stats["places"]) + int(stats["transitions"])


def suite_cases(table: str = "table2") -> List[BenchmarkCase]:
    """The solvable cases of one table (or of both, ``table="all"``)."""
    if table == "table1":
        cases = TABLE1_CASES
    elif table == "table2":
        cases = TABLE2_CASES
    elif table == "all":
        cases = TABLE2_CASES + TABLE1_CASES
    else:
        raise ValueError(f"unknown table {table!r}")
    # Entries marked solve=False / explicit_ok=False exist for symbolic
    # state counting only; a batch encoding sweep cannot run them.
    return [case for case in cases if case.solve and case.explicit_ok]


def select_smallest_cases(
    cases: Sequence[BenchmarkCase], count: int
) -> List[BenchmarkCase]:
    """The ``count`` smallest cases by places+transitions (ties by name)."""
    ranked = sorted(cases, key=lambda case: (_size_proxy(case), case.name))
    return ranked[: max(0, count)]


def run_benchmark_suite(
    table: str = "table2",
    jobs: int = 1,
    smallest: Optional[int] = None,
    frontier_width: int = 16,
    brick_mode: Optional[str] = None,
    max_signals: Optional[int] = None,
    enlarge_concurrency: bool = False,
    verbose: bool = False,
    max_states: Optional[int] = 200000,
    caches_on: bool = True,
    timeout: Optional[float] = None,
) -> BatchResult:
    """Encode the built-in benchmark library (``pyetrify bench --all``).

    Each case runs with its own library settings
    (:meth:`BenchmarkCase.solver_settings`), so strict cases stay
    input-preserving and relaxed ones get ``allow_input_delay`` — the
    same regime as the Table-1/Table-2 harnesses.  ``smallest`` keeps
    only the N smallest STGs (the CI smoke job uses 3).  The remaining
    knobs overlay the per-case settings when supplied, so the CLI's
    tuning flags apply in ``--all`` mode too; ``max_states`` bounds
    explicit state-graph construction exactly as in single-STG mode.
    """
    cases = suite_cases(table)
    if smallest is not None:
        cases = select_smallest_cases(cases, smallest)
    stgs = [case.build() for case in cases]
    settings = []
    for case in cases:
        case_settings = case.solver_settings(frontier_width=frontier_width)
        if brick_mode is not None:
            case_settings.search.brick_mode = brick_mode
        if max_signals is not None:
            case_settings.max_signals = max_signals
        if enlarge_concurrency:
            case_settings.search.enlarge_concurrency = True
        if verbose:
            case_settings.verbose = True
        settings.append(case_settings)
    return encode_many(
        stgs,
        settings=settings,
        jobs=jobs,
        max_states=max_states,
        caches_on=caches_on,
        timeout=timeout,
    )
