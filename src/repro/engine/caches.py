"""Shared per-state-graph caches with insertion-aware invalidation.

The iterative CSC solver re-analyses a *chain* of state graphs: every
inserted signal produces a new graph whose states are ``(old_state, v)``
pairs.  Re-deriving bricks, regions and the CSC conflict relation from
scratch on every link of that chain is where the solver used to spend
most of its time.  This module attaches a cache to each
:class:`~repro.stg.state_graph.StateGraph` that

* holds the graph's canonical :class:`~repro.core.indexed.IndexedStateGraph`
  (the integer/bitset representation the core pipeline computes on),
* memoizes brick decomposition (per event) and brick adjacency,
* memoizes the CSC conflict list and the code groups backing it,
* records the *provenance* of a graph produced by signal insertion
  (parent graph, I-partition, inserted signal), which enables

  - derivation of the child's indexed representation by index
    arithmetic (packed codes, parent-position table) instead of a
    from-scratch re-derivation,
  - incremental CSC re-analysis (:func:`repro.core.csc.csc_conflicts`
    only re-examines states descending from previously code-sharing
    groups), and
  - selective carry-over of per-event brick entries: an event's cached
    bricks survive the insertion when none of their states was split by
    the insertion (i.e. none lies in ``ER(x+)`` or ``ER(x-)``); only the
    touched entries are recomputed on the expanded graph.

Caches never change results: excitation-region carry-over is exact (the
untouched part of the graph is replayed isomorphically at the stable
value of the new signal), and region-brick carry-over is verified against
a from-scratch recomputation by the regression tests.  The global switch
(:func:`disable_caches` / :func:`use_caches`) restores the original
recompute-everything behaviour, which the batch benchmark uses as its
serial baseline.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.bricks import (
    brick_adjacency,
    compute_bricks,
    deduplicate_bricks,
    event_region_bricks_indexed,
)
from repro.core.excitation import excitation_regions_indexed
from repro.utils.ordered import stable_sorted

State = Hashable
Brick = FrozenSet[State]

_CACHE_ATTR = "_repro_cache"

# Region-brick carry-over is exact on every library benchmark (see
# tests/test_engine.py); the flag exists so the conservative behaviour
# (recompute all pre/post-region bricks after every insertion) can be
# restored without code changes if a future workload disproves that.
CARRY_REGION_BRICKS = True

_state = threading.local()


class CacheStats:
    """Process-wide hit/miss/carry-over tallies for the engine caches.

    Plain integer increments (no locks — GIL-tolerant telemetry): the
    counters feed the solver's per-iteration progress records and the
    observability surfaces, never control flow.
    """

    __slots__ = ("brick_hits", "brick_misses", "brick_carries", "adjacency_hits", "adjacency_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.brick_hits = 0
        self.brick_misses = 0
        self.brick_carries = 0
        self.adjacency_hits = 0
        self.adjacency_misses = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "brick_hits": self.brick_hits,
            "brick_misses": self.brick_misses,
            "brick_carries": self.brick_carries,
            "adjacency_hits": self.adjacency_hits,
            "adjacency_misses": self.adjacency_misses,
        }

    def hit_rate(self) -> float:
        """Brick-entry hit rate (carry-overs count as hits)."""
        total = self.brick_hits + self.brick_carries + self.brick_misses
        if total == 0:
            return 0.0
        return (self.brick_hits + self.brick_carries) / total


#: The process-global tally every cache lookup reports to.
STATS = CacheStats()


def caches_enabled() -> bool:
    """True when the engine caches are active in this thread.

    The switch is *per thread* (and therefore per worker process),
    defaulting to enabled: concurrent solvers can flip it independently
    without racing each other.  Code running on other threads is not
    affected by :func:`disable_caches` — spawn threads/workers with the
    setting you want (``encode_many`` forwards its ``caches_on`` flag
    into the pool workers for exactly this reason).
    """
    return getattr(_state, "enabled", True)


def enable_caches() -> None:
    _state.enabled = True


def disable_caches() -> None:
    """Fall back to the original recompute-everything code paths
    (current thread only — see :func:`caches_enabled`)."""
    _state.enabled = False


@contextmanager
def use_caches(enabled: bool = True):
    """Temporarily enable or disable the engine caches (current thread)."""
    previous = caches_enabled()
    _state.enabled = enabled
    try:
        yield
    finally:
        _state.enabled = previous


class SGCache:
    """All memoized analysis results of one state graph."""

    __slots__ = (
        "provenance",
        "indexed",
        "conflicts",
        "code_groups",
        "er_bricks",
        "region_bricks",
        "brick_lists",
        "adjacency",
        "extras",
    )

    def __init__(self) -> None:
        # (weakref-to-parent_sg, partition, signal) when this graph was
        # produced by repro.core.insertion.insert_signal, else None.  The
        # parent is held weakly so long insertion chains are collectable:
        # while the solver works on the child the parent is still
        # strongly referenced (it is the solver's current graph), which
        # is exactly the window in which incremental re-analysis and
        # brick carry-over read it; afterwards a dead reference simply
        # falls back to recomputation.
        self.provenance: Optional[Tuple["weakref.ref", object, str]] = None
        # The canonical IndexedStateGraph of the graph (built lazily by
        # repro.core.indexed.indexed_state_graph; typed as object to keep
        # this module importable below repro.core.indexed).
        self.indexed: Optional[object] = None
        self.conflicts: Optional[list] = None
        self.code_groups: Optional[Dict[tuple, list]] = None
        self.er_bricks: Dict[object, List[Brick]] = {}
        self.region_bricks: Dict[Tuple[object, int], List[Brick]] = {}
        self.brick_lists: Dict[Tuple[str, int], List[Brick]] = {}
        self.adjacency: Dict[Tuple[str, int], Dict[int, Set[int]]] = {}
        self.extras: Dict[object, object] = {}


def get_cache(sg) -> SGCache:
    """The cache attached to ``sg`` (created on first use)."""
    cache = sg.__dict__.get(_CACHE_ATTR)
    if cache is None:
        cache = SGCache()
        sg.__dict__[_CACHE_ATTR] = cache
    return cache


def peek_cache(sg) -> Optional[SGCache]:
    return sg.__dict__.get(_CACHE_ATTR)


def invalidate_caches(sg) -> None:
    """Drop every cached analysis result of ``sg``."""
    sg.__dict__.pop(_CACHE_ATTR, None)


def note_insertion(parent_sg, new_sg, partition, signal: str) -> None:
    """Record that ``new_sg`` was produced by inserting ``signal`` into
    ``parent_sg`` along ``partition``.

    Called by :func:`repro.core.insertion.insert_signal`.  The provenance
    drives incremental CSC re-analysis and lazy brick carry-over; it is
    recorded cheaply here and only exploited when (and if) the expanded
    graph is analysed.
    """
    if not caches_enabled():
        return
    get_cache(new_sg).provenance = (weakref.ref(parent_sg), partition, signal)


def provenance_parent(cache: "SGCache"):
    """``(parent_sg, partition)`` of a graph's provenance, or ``None``
    when there is no provenance or the parent has been collected."""
    if cache.provenance is None:
        return None
    parent_ref, partition, _signal = cache.provenance
    parent = parent_ref()
    if parent is None:
        return None
    return parent, partition


# ----------------------------------------------------------------------
# brick decomposition
# ----------------------------------------------------------------------
def _carried_bricks(sg, bricks: List[Brick], partition) -> Optional[List[Brick]]:
    """Map a parent-graph brick list into ``sg``, or ``None`` if touched.

    A brick list survives the insertion untouched when none of its states
    lies in ``ER(x+)`` / ``ER(x-)``: every remaining state ``s`` appears
    in the expanded graph exactly once, as ``(s, 0)`` (``s in S0``) or
    ``(s, 1)`` (``s in S1``), and the subgraph induced on those states is
    replayed unchanged, so the mapped sets are the bricks the expanded
    graph would compute for the same event.
    """
    splus = partition.splus
    sminus = partition.sminus
    s0 = partition.s0
    mapped: List[Brick] = []
    has_state = sg.ts.has_state
    for brick in bricks:
        new_brick = []
        for state in brick:
            if state in splus or state in sminus:
                return None
            new_state = (state, 0) if state in s0 else (state, 1)
            if not has_state(new_state):
                # Defensive: every stable-side state stays reachable at
                # its canonical value; if that invariant ever fails we
                # recompute rather than serve a wrong cache entry.
                return None
            new_brick.append(new_state)
        mapped.append(frozenset(new_brick))
    return mapped


def _indexed_module():
    """Deferred import of :mod:`repro.core.indexed` (which imports this
    module at load time, so the dependency must point upward lazily)."""
    from repro.core import indexed

    return indexed


def _er_bricks_for(sg, cache: SGCache, event) -> List[Brick]:
    bricks = cache.er_bricks.get(event)
    if bricks is not None:
        STATS.brick_hits += 1
        return bricks
    parent_info = provenance_parent(cache)
    if parent_info is not None:
        parent_sg, partition = parent_info
        parent_cache = peek_cache(parent_sg)
        if parent_cache is not None:
            parent_entry = parent_cache.er_bricks.get(event)
            if parent_entry is not None:
                mapped = _carried_bricks(sg, parent_entry, partition)
                if mapped is not None:
                    cache.er_bricks[event] = mapped
                    STATS.brick_carries += 1
                    return mapped
    indexed = _indexed_module()
    bricks = excitation_regions_indexed(indexed.indexed_state_graph(sg), event)
    cache.er_bricks[event] = bricks
    STATS.brick_misses += 1
    return bricks


def _region_bricks_for(sg, cache: SGCache, event, max_explored: int) -> List[Brick]:
    key = (event, max_explored)
    bricks = cache.region_bricks.get(key)
    if bricks is not None:
        STATS.brick_hits += 1
        return bricks
    parent_info = provenance_parent(cache) if CARRY_REGION_BRICKS else None
    if parent_info is not None:
        parent_sg, partition = parent_info
        parent_cache = peek_cache(parent_sg)
        if parent_cache is not None:
            parent_entry = parent_cache.region_bricks.get(key)
            if parent_entry is not None:
                mapped = _carried_bricks(sg, parent_entry, partition)
                if mapped is not None:
                    cache.region_bricks[key] = mapped
                    STATS.brick_carries += 1
                    return mapped
    indexed = _indexed_module()
    bricks = event_region_bricks_indexed(
        indexed.indexed_state_graph(sg), event, max_explored=max_explored
    )
    cache.region_bricks[key] = bricks
    STATS.brick_misses += 1
    return bricks


def get_bricks(sg, mode: str = "regions", max_explored: int = 20000) -> List[Brick]:
    """Brick decomposition of ``sg`` (cached per ``(mode, budget)``).

    Produces exactly what :func:`repro.core.bricks.compute_bricks` would,
    assembling the per-event cache entries (carried over from the parent
    graph where the insertion did not touch them) and recomputing only
    the invalidated ones.
    """
    if not caches_enabled():
        return compute_bricks(sg.ts, mode=mode, max_explored=max_explored)
    cache = get_cache(sg)
    key = (mode, max_explored)
    bricks = cache.brick_lists.get(key)
    if bricks is not None:
        return bricks
    if mode == "states":
        bricks = compute_bricks(sg.ts, mode="states", max_explored=max_explored)
    elif mode in ("excitation", "regions"):
        collected: List[Brick] = []
        for event in stable_sorted(sg.ts.events):
            collected.extend(_er_bricks_for(sg, cache, event))
        if mode == "regions":
            for event in stable_sorted(sg.ts.events):
                collected.extend(_region_bricks_for(sg, cache, event, max_explored))
        bricks = deduplicate_bricks(collected)
    else:
        raise ValueError(f"unknown brick mode: {mode!r}")
    cache.brick_lists[key] = bricks
    return bricks


def get_adjacency(sg, mode: str = "regions", max_explored: int = 20000) -> Dict[int, Set[int]]:
    """Brick adjacency for :func:`get_bricks` (cached per ``(mode, budget)``).

    With caches enabled the relation is computed by the bitmask algebra
    of :func:`repro.core.indexed.brick_adjacency_masks` (identical to the
    object-space :func:`repro.core.bricks.brick_adjacency`)."""
    if not caches_enabled():
        return brick_adjacency(sg.ts, compute_bricks(sg.ts, mode=mode, max_explored=max_explored))
    cache = get_cache(sg)
    key = (mode, max_explored)
    adjacency = cache.adjacency.get(key)
    if adjacency is None:
        STATS.adjacency_misses += 1
        indexed = _indexed_module()
        _bricks, _masks, rows = indexed.indexed_brick_bundle(sg, mode, max_explored)
        adjacency = indexed.adjacency_dict_from_bundle(rows)
        cache.adjacency[key] = adjacency
    else:
        STATS.adjacency_hits += 1
    return adjacency
