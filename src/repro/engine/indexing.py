"""Integer-indexed view of a state graph for the insertion search.

The Figure-4 search evaluates tens of thousands of candidate blocks per
insertion, and every evaluation walks all transitions and both exit
borders.  With states represented by their original objects (nested
``(marking, bit)`` tuples after a few insertions) the dominant cost is
re-hashing those objects in set operations.  This module interns the
states of a graph once into ``0..n-1`` and implements the block
evaluation entirely on integers and bitmasks:

* a candidate block is a single Python ``int`` bitmask (union with a
  brick is one ``|``),
* the derived I-partition is a ``side`` byte table (``S0 / ER(x+) / S1 /
  ER(x-)`` per state),
* cost evaluation is one pass over a pre-extracted arc table plus one
  pass over the (index-mapped) conflict pairs.

The numbers it produces are exactly those of
:func:`repro.core.cost.evaluate_block` — the legacy object-space
implementation is kept as the cache-disabled baseline and as a
differential-testing oracle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.cost import Cost
from repro.core.ipartition import IPartition
from repro.engine import caches
from repro.stg.signals import SignalEdge

State = Hashable

# side table codes
S0 = 0
SPLUS = 1
S1 = 2
SMINUS = 3


class StateIndex:
    """Interned arrays of one state graph (states, arcs, signals)."""

    __slots__ = (
        "states",
        "position",
        "succ_targets",
        "arcs",
        "signal_is_input",
        "num_states",
        "full_mask",
    )

    def __init__(self, sg) -> None:
        self.states: List[State] = list(sg.ts.states)
        self.position: Dict[State, int] = {
            state: index for index, state in enumerate(self.states)
        }
        self.num_states = len(self.states)
        self.full_mask = (1 << self.num_states) - 1

        position = self.position
        succ: List[Tuple[int, ...]] = []
        for state in self.states:
            targets = dict.fromkeys(
                position[target] for _event, target in sg.ts.successors(state)
            )
            succ.append(tuple(targets))
        self.succ_targets = succ

        # Signals are interned as well; non-SignalEdge arcs do not carry a
        # signal and are excluded from the arc table (matching the
        # isinstance checks of the object-space cost helpers) but do
        # participate in the successor table above.
        signal_ids: Dict[str, int] = {}
        signal_is_input: List[bool] = []
        arcs: List[Tuple[int, int, int]] = []
        for source, edge, target in sg.ts.transitions():
            if not isinstance(edge, SignalEdge):
                continue
            signal = edge.signal
            sig_id = signal_ids.get(signal)
            if sig_id is None:
                sig_id = len(signal_ids)
                signal_ids[signal] = sig_id
                signal_is_input.append(sg.is_input_signal(signal))
            arcs.append((position[source], position[target], sig_id))
        self.arcs = arcs
        self.signal_is_input = signal_is_input

    def mask_of(self, states: Sequence[State]) -> int:
        position = self.position
        mask = 0
        for state in states:
            mask |= 1 << position[state]
        return mask

    def states_of_mask(self, mask: int) -> List[int]:
        indices = []
        while mask:
            low = mask & -mask
            indices.append(low.bit_length() - 1)
            mask ^= low
        return indices


def get_index(sg) -> StateIndex:
    """The (cached) :class:`StateIndex` of ``sg``."""
    if not caches.caches_enabled():
        return StateIndex(sg)
    cache = caches.get_cache(sg)
    index = cache.extras.get("index")
    if index is None:
        index = StateIndex(sg)
        cache.extras["index"] = index
    return index


def get_indexed_bricks(
    sg, mode: str = "regions", max_explored: int = 20000
) -> Tuple[List[FrozenSet[State]], List[int], List[Tuple[int, ...]]]:
    """Bricks of ``sg`` with their bitmasks and sorted adjacency lists.

    Returns ``(bricks, masks, adjacency)`` where ``bricks`` is the
    object-space list of :func:`repro.engine.caches.get_bricks`,
    ``masks[i]`` is the bitmask of ``bricks[i]`` and ``adjacency[i]`` the
    sorted tuple of adjacent brick indices.
    """
    key = ("indexed-bricks", mode, max_explored)
    cache = caches.get_cache(sg) if caches.caches_enabled() else None
    if cache is not None:
        bundle = cache.extras.get(key)
        if bundle is not None:
            return bundle
    bricks = caches.get_bricks(sg, mode, max_explored)
    index = get_index(sg)
    masks = [index.mask_of(brick) for brick in bricks]
    adjacency_sets = caches.get_adjacency(sg, mode, max_explored)
    adjacency = [tuple(sorted(adjacency_sets[i])) for i in range(len(bricks))]
    bundle = (bricks, masks, adjacency)
    if cache is not None:
        cache.extras[key] = bundle
    return bundle


class IndexedEvaluation:
    """A candidate block with its side table and cost (index space)."""

    __slots__ = ("mask", "size", "side", "cost")

    def __init__(self, mask: int, size: int, side: bytearray, cost: Cost) -> None:
        self.mask = mask
        self.size = size
        self.side = side
        self.cost = cost

    def to_partition(self, index: StateIndex) -> IPartition:
        """The object-space I-partition this evaluation describes."""
        buckets: Tuple[List[State], List[State], List[State], List[State]] = (
            [],
            [],
            [],
            [],
        )
        states = index.states
        for i, code in enumerate(self.side):
            buckets[code].append(states[i])
        return IPartition(
            s0=frozenset(buckets[S0]),
            splus=frozenset(buckets[SPLUS]),
            s1=frozenset(buckets[S1]),
            sminus=frozenset(buckets[SMINUS]),
        )

    def block_states(self, index: StateIndex) -> FrozenSet[State]:
        states = index.states
        return frozenset(
            states[i] for i, code in enumerate(self.side) if code in (S0, SPLUS)
        )


def _min_wellformed_exit_border(
    members: List[int], member: bytearray, succ: List[Tuple[int, ...]]
) -> Set[int]:
    """Index-space MWFEB: exit border closed under in-block successors."""
    border: Set[int] = set()
    for i in members:
        for t in succ[i]:
            if not member[t]:
                border.add(i)
                break
    stack = list(border)
    while stack:
        i = stack.pop()
        for t in succ[i]:
            if member[t] and t not in border:
                border.add(t)
                stack.append(t)
    return border


class IndexedEvaluator:
    """Memoized block evaluation for one insertion search.

    Evaluations are keyed by block bitmask (equivalently: by the block's
    state frozenset), so repeated unions explored by the frontier growth,
    the greedy merge and the concurrency enlargement are costed once.
    """

    __slots__ = (
        "index",
        "conflict_pairs",
        "count_input_delays",
        "memo",
        "hits",
        "misses",
    )

    def __init__(self, sg, conflicts, allow_input_delay: bool) -> None:
        self.index = get_index(sg)
        position = self.index.position
        self.conflict_pairs = [
            (position[conflict.first], position[conflict.second])
            for conflict in conflicts
        ]
        self.count_input_delays = not allow_input_delay
        self.memo: Dict[int, Optional[IndexedEvaluation]] = {}
        self.hits = 0
        self.misses = 0

    def evaluate(self, mask: int) -> Optional[IndexedEvaluation]:
        """Evaluate a block bitmask (``None`` for degenerate blocks)."""
        found = self.memo.get(mask, _MISSING)
        if found is not _MISSING:
            self.hits += 1
            return found
        self.misses += 1
        evaluation = self._evaluate(mask)
        self.memo[mask] = evaluation
        return evaluation

    def _evaluate(self, mask: int) -> Optional[IndexedEvaluation]:
        index = self.index
        n = index.num_states
        if mask == 0 or mask == index.full_mask:
            return None
        size = mask.bit_count()
        if size >= n:
            return None

        succ = index.succ_targets
        member = bytearray(n)
        block_members = index.states_of_mask(mask)
        for i in block_members:
            member[i] = 1
        splus = _min_wellformed_exit_border(block_members, member, succ)
        if not splus:
            return None

        co_member = bytearray(1 if not m else 0 for m in member)
        co_members = [i for i in range(n) if co_member[i]]
        sminus = _min_wellformed_exit_border(co_members, co_member, succ)
        if not sminus:
            return None

        side = bytearray(n)
        for i in co_members:
            side[i] = S1
        for i in splus:
            side[i] = SPLUS
        for i in sminus:
            side[i] = SMINUS

        unsolved = 0
        for first, second in self.conflict_pairs:
            a = side[first]
            b = side[second]
            if not ((a == S0 and b == S1) or (a == S1 and b == S0)):
                unsolved += 1

        entering_plus: Set[int] = set()
        entering_minus: Set[int] = set()
        delayed: Set[int] = set()
        for source, target, signal in index.arcs:
            ss = side[source]
            st = side[target]
            if st == SPLUS:
                if ss != SPLUS:
                    entering_plus.add(signal)
                if ss == SMINUS:
                    delayed.add(signal)
            elif st == SMINUS:
                if ss != SMINUS:
                    entering_minus.add(signal)
                if ss == SPLUS:
                    delayed.add(signal)
            elif ss == SPLUS:
                if st == S1:
                    delayed.add(signal)
            elif ss == SMINUS:
                if st == S0:
                    delayed.add(signal)

        input_delays = 0
        if self.count_input_delays:
            is_input = index.signal_is_input
            input_delays = sum(1 for signal in delayed if is_input[signal])

        cost = Cost(
            unsolved_conflicts=unsolved,
            input_delays=input_delays,
            trigger_estimate=len(entering_plus) + len(entering_minus) + len(delayed),
            border_size=len(splus) + len(sminus),
        )
        return IndexedEvaluation(mask, size, side, cost)


_MISSING = object()
