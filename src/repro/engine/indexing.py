"""Compatibility shim: the indexed view moved into the core.

PR 1 introduced the integer-indexed representation here as a per-search
memo for the Figure-4 block evaluation.  It has since been promoted to
the *canonical* representation the whole CSC pipeline computes on
(:mod:`repro.core.indexed`): excitation regions, CSC conflict bucketing,
brick decomposition, region expansion, exit borders and the SIP property
checks all run on the interned integer/bitset form, with the object-space
implementations kept behind ``use_caches(False)`` as the differential
oracle.

This module re-exports the historical names so PR-1-era imports keep
working; new code should import from :mod:`repro.core.indexed`.
"""

from __future__ import annotations

from repro.core.indexed import (
    S0,
    S1,
    SMINUS,
    SPLUS,
    IndexedEvaluation,
    IndexedEvaluator,
    IndexedStateGraph,
    indexed_brick_bundle,
    indexed_state_graph,
)

# Historical aliases (PR-1 API).
StateIndex = IndexedStateGraph
get_index = indexed_state_graph
get_indexed_bricks = indexed_brick_bundle

__all__ = [
    "S0",
    "S1",
    "SMINUS",
    "SPLUS",
    "IndexedEvaluation",
    "IndexedEvaluator",
    "IndexedStateGraph",
    "StateIndex",
    "get_index",
    "get_indexed_bricks",
    "indexed_brick_bundle",
    "indexed_state_graph",
]
