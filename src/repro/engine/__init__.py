"""The batch encoding engine.

This package scales the per-STG encoder of :mod:`repro.core` to whole
benchmark libraries:

* :mod:`repro.engine.caches` — per-state-graph shared caches (the
  canonical :class:`~repro.core.indexed.IndexedStateGraph`, brick
  decomposition, brick adjacency, CSC conflict analysis) with selective
  invalidation and index derivation across signal insertions;
* :mod:`repro.engine.indexing` — compatibility shim for the PR-1 module
  of that name; the indexed representation itself now lives in
  :mod:`repro.core.indexed` and is what the core pipeline computes on;
* :mod:`repro.engine.batch` — ``encode_many``: encode many STGs
  concurrently through a process pool, with byte-identical results
  between serial and parallel runs;
* :mod:`repro.engine.shard` — in-solve sharding: the worker pool behind
  ``SolverSettings.search_jobs``, which parallelises the candidate
  evaluations *inside* one Figure-4 insertion search (byte-identical to
  serial at any width, budget-clamped against batch-level ``jobs``).

``repro.engine.batch`` imports the high-level API (which in turn imports
the core solver and therefore this package), so its names are re-exported
lazily to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.engine.caches import (
    caches_enabled,
    disable_caches,
    enable_caches,
    invalidate_caches,
    use_caches,
)

_LAZY_BATCH_EXPORTS = (
    "BatchItem",
    "BatchResult",
    "encode_many",
    "run_benchmark_suite",
    "select_smallest_cases",
)

__all__ = [
    "caches_enabled",
    "disable_caches",
    "enable_caches",
    "invalidate_caches",
    "use_caches",
    *_LAZY_BATCH_EXPORTS,
]


def __getattr__(name: str):
    if name in _LAZY_BATCH_EXPORTS:
        from repro.engine import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
