"""Logic synthesis: from a CSC-satisfying encoding to verified gates.

This tier finishes the paper's pipeline.  Given an encoded state graph
(CSC holds), :func:`synthesize` derives the per-output complex-gate
covers via :mod:`repro.logic`, builds a concrete
:class:`~repro.synth.network.GateNetwork` (optionally decomposed into
2-input gates under a bounded speed-independence check), emits
equations / structural Verilog / BLIF with byte-stable output, and plays
the netlist against the SG token game so every :class:`SynthResult`
carries a machine-checked ``verified`` flag.

The estimation entry points of :mod:`repro.logic`
(:func:`estimate_circuit`, :class:`CircuitEstimate`) are re-exported
here: synthesis *is* their continuation, and the literal counts agree by
construction.
"""

from repro.logic.netlist import CircuitEstimate, estimate_circuit
from repro.synth.decompose import decompose_network
from repro.synth.emit import emit_blif, emit_equations, emit_verilog
from repro.synth.network import Gate, GateNetwork, build_network
from repro.synth.simulate import VerificationReport, verify_network
from repro.synth.synthesize import SynthResult, synthesize

__all__ = [
    "synthesize",
    "SynthResult",
    "Gate",
    "GateNetwork",
    "build_network",
    "decompose_network",
    "emit_equations",
    "emit_verilog",
    "emit_blif",
    "verify_network",
    "VerificationReport",
    "estimate_circuit",
    "CircuitEstimate",
]
