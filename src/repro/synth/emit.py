"""Netlist emitters: equations (.eqn), structural Verilog, and BLIF.

All three writers are deterministic byte-for-byte: they iterate the
network's stored orders (SG signal order for ports, topological wire
order for gates) and never touch sets or timestamps, so re-synthesizing
the same encoding always reproduces the same files.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.logic.cubes import Cube
from repro.synth.network import Gate, GateNetwork


# -- equations ---------------------------------------------------------


def emit_equations(network: GateNetwork) -> str:
    """SIS-style ``.eqn`` text: two-level equations per output signal.

    Equations describe the minimised covers regardless of whether the
    network was decomposed — the decomposition is structure, not function.
    """
    lines: List[str] = []
    lines.append(f"# {network.name}: complex-gate equations synthesized by pyetrify")
    lines.append("INORDER = " + " ".join(network.inputs) + ";")
    lines.append("OUTORDER = " + " ".join(network.outputs) + ";")
    for signal in network.outputs:
        fn = network.functions[signal]
        lines.append(f"{signal} = {fn.expression()};")
    return "\n".join(lines) + "\n"


# -- Verilog -----------------------------------------------------------


def _verilog_identifiers(network: GateNetwork) -> Dict[str, str]:
    """Deterministic map from wire names to legal Verilog identifiers."""
    mapping: Dict[str, str] = {}
    used: set = set()
    for name in list(network.signals) + list(network.wires):
        ident = re.sub(r"[^A-Za-z0-9_]", "_", name)
        if not ident or ident[0].isdigit():
            ident = "_" + ident
        while ident in used:
            ident = ident + "_"
        used.add(ident)
        mapping[name] = ident
    return mapping

def _cube_verilog(cube: Cube, signals: List[str], ident: Dict[str, str]) -> str:
    terms: List[str] = []
    for position, name in enumerate(signals):
        literal = cube.literal(position)
        if literal == "1":
            terms.append(ident[name])
        elif literal == "0":
            terms.append("~" + ident[name])
    if not terms:
        return "1'b1"
    return " & ".join(terms)


def _gate_verilog(gate: Gate, signals: List[str], ident: Dict[str, str]) -> str:
    out = ident[gate.output]
    if gate.kind == "sop":
        cubes = list(gate.cover)
        if not cubes:
            return f"  assign {out} = 1'b0;"
        parts = [_cube_verilog(cube, signals, ident) for cube in cubes]
        if len(parts) == 1:
            return f"  assign {out} = {parts[0]};"
        return f"  assign {out} = " + " | ".join(f"({p})" for p in parts) + ";"
    ins = [ident[name] for name in gate.inputs]
    if gate.kind == "not":
        return f"  assign {out} = ~{ins[0]};"
    if gate.kind == "buf":
        return f"  assign {out} = {ins[0]};"
    op = " & " if gate.kind == "and" else " | "
    return f"  assign {out} = {op.join(ins)};"


def emit_verilog(network: GateNetwork) -> str:
    """Structural Verilog with one continuous assign per gate."""
    ident = _verilog_identifiers(network)
    module = re.sub(r"[^A-Za-z0-9_]", "_", network.name) or "netlist"
    if module[0].isdigit():
        module = "_" + module
    ports = [ident[s] for s in network.inputs + network.outputs]
    lines: List[str] = []
    lines.append(f"// {network.name}: speed-independent netlist synthesized by pyetrify")
    lines.append(f"module {module} (" + ", ".join(ports) + ");")
    if network.inputs:
        lines.append("  input " + ", ".join(ident[s] for s in network.inputs) + ";")
    if network.outputs:
        lines.append("  output " + ", ".join(ident[s] for s in network.outputs) + ";")
    if network.wires:
        lines.append("  wire " + ", ".join(ident[w] for w in network.wires) + ";")
    lines.append("")
    for wire in list(network.wires) + list(network.outputs):
        lines.append(_gate_verilog(network.gates[wire], network.signals, ident))
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


# -- BLIF --------------------------------------------------------------


def _names_rows(gate: Gate, signals: List[str]) -> List[str]:
    """``.names`` header + cover rows for one gate."""
    if gate.kind == "sop":
        support = list(gate.inputs)
        positions = [signals.index(name) for name in support]
        rows = [".names " + " ".join(support + [gate.output])]
        cubes = list(gate.cover)
        if not support:
            # constant: full cube -> 1, empty cover -> no rows (constant 0)
            if cubes:
                rows.append("1")
            return rows
        for cube in cubes:
            pattern = "".join(
                cube.literal(position) if cube.literal(position) != "-" else "-"
                for position in positions
            )
            rows.append(pattern + " 1")
        return rows
    rows = [".names " + " ".join(list(gate.inputs) + [gate.output])]
    n = len(gate.inputs)
    if gate.kind == "not":
        rows.append("0 1")
    elif gate.kind == "buf":
        rows.append("1 1")
    elif gate.kind == "and":
        rows.append("1" * n + " 1")
    else:  # or
        for i in range(n):
            rows.append("".join("1" if j == i else "-" for j in range(n)) + " 1")
    return rows


def emit_blif(network: GateNetwork) -> str:
    """BLIF text: one ``.names`` block per gate."""
    lines: List[str] = []
    lines.append(f"# {network.name}: synthesized by pyetrify")
    lines.append(f".model {network.name}")
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for wire in list(network.wires) + list(network.outputs):
        lines.extend(_names_rows(network.gates[wire], network.signals))
    lines.append(".end")
    return "\n".join(lines) + "\n"
