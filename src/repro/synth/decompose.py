"""Decompose wide sop gates into inverters and 2-input AND/OR gates.

The decomposition is purely structural — each cube becomes a left-folded
AND tree over its literal wires, the cubes OR-fold into the output gate,
and complemented literals share one inverter wire per signal.  Whether the
result is still speed independent is *not* decided here: the gate-level
verifier (:mod:`repro.synth.simulate`) explores the product of SG states
and internal wire values and rejects decompositions that introduce
hazards, at which point synthesis falls back to the complex-gate network.

Wire naming is deterministic (``<sig>_b`` inverters, ``<sig>_c<i>``
cube terms, ``<sig>_c<i>_a<j>`` / ``<sig>_o<j>`` tree internals,
uniquified with trailing underscores against the signal namespace), so
emitted netlists are byte stable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.synth.network import Gate, GateNetwork, fresh_name


def _fold(
    kind: str,
    operands: List[str],
    out_name: str,
    tmp_prefix: str,
    taken: set,
) -> Tuple[List[Gate], List[str]]:
    """Left-fold ``operands`` with 2-input ``kind`` gates into ``out_name``.

    Returns the gates (topological order, last one driving ``out_name``)
    and the intermediate wire names created along the way.
    """
    gates: List[Gate] = []
    wires: List[str] = []
    if len(operands) == 1:
        gates.append(Gate(output=out_name, kind="buf", inputs=(operands[0],)))
        return gates, wires
    acc = operands[0]
    for i, operand in enumerate(operands[1:], start=1):
        last = i == len(operands) - 1
        if last:
            out = out_name
        else:
            out = fresh_name(f"{tmp_prefix}{i}", taken)
            taken.add(out)
            wires.append(out)
        gates.append(Gate(output=out, kind=kind, inputs=(acc, operand)))
        acc = out
    return gates, wires


def decompose_network(network: GateNetwork) -> Tuple[GateNetwork, Dict[str, int]]:
    """Rewrite every sop gate of ``network`` into a 2-input gate tree.

    Constant gates (empty cover or a single all-don't-care cube) are kept
    as sop gates — they have no fan-in to decompose.  Returns the new
    network plus a small stats dict.
    """
    taken = set(network.signals)
    wires: List[str] = []
    gates: Dict[str, Gate] = {}
    inverters: Dict[str, str] = {}
    decomposed_gates = 0
    max_fanin_before = 0

    def literal_wire(position: int, value: str) -> str:
        signal = network.signals[position]
        if value == "1":
            return signal
        wire = inverters.get(signal)
        if wire is None:
            wire = fresh_name(f"{signal}_b", taken)
            taken.add(wire)
            inverters[signal] = wire
            wires.append(wire)
            gates[wire] = Gate(output=wire, kind="not", inputs=(signal,))
        return wire

    for signal in network.outputs:
        gate = network.gates[signal]
        cubes = list(gate.cover) if gate.cover is not None else []
        literals_per_cube = [
            [(p, cube.literal(p)) for p in range(len(network.signals)) if cube.literal(p) != "-"]
            for cube in cubes
        ]
        if not cubes or any(not lits for lits in literals_per_cube):
            # constant 0 (empty cover) or constant 1 (full cube): keep as is
            gates[signal] = gate
            continue
        max_fanin_before = max(max_fanin_before, sum(len(lits) for lits in literals_per_cube))
        decomposed_gates += 1
        term_wires: List[str] = []
        for i, lits in enumerate(literals_per_cube):
            operand_wires = [literal_wire(p, v) for p, v in lits]
            if len(operand_wires) == 1:
                term_wires.append(operand_wires[0])
                continue
            term = fresh_name(f"{signal}_c{i}", taken)
            taken.add(term)
            tree_gates, tree_wires = _fold("and", operand_wires, term, f"{signal}_c{i}_a", taken)
            for g in tree_gates:
                gates[g.output] = g
            wires.extend(tree_wires)
            wires.append(term)
            term_wires.append(term)
        or_gates, or_wires = _fold("or", term_wires, signal, f"{signal}_o", taken)
        for g in or_gates:
            gates[g.output] = g
        wires.extend(or_wires)

    decomposed = GateNetwork(
        name=network.name,
        signals=list(network.signals),
        inputs=list(network.inputs),
        outputs=list(network.outputs),
        wires=wires,
        gates=gates,
        functions=dict(network.functions),
    )
    info = {
        "gates_decomposed": decomposed_gates,
        "internal_wires": len(wires),
        "max_fanin_before": max_fanin_before,
    }
    return decomposed, info
