"""Gate networks: the concrete netlist behind a circuit estimate.

A :class:`GateNetwork` holds one driver gate per non-input signal plus any
internal wires introduced by decomposition.  Complex gates ("sop") evaluate
their minimised cover directly over the signal vector; decomposed networks
use 2-input AND/OR gates and inverters over named internal wires.

The network is a pure function of the signal code: ``next_values(code)``
returns the value every non-input signal is heading to, which is exactly
what the gate-level verifier compares against the state graph's enabled
edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.cubes import Cover
from repro.logic.nextstate import NextStateFunction

Code = Tuple[int, ...]

#: Gate kinds understood by the evaluator and the emitters.
GATE_KINDS = ("sop", "and", "or", "not", "buf")


@dataclass(frozen=True)
class Gate:
    """One gate: an output wire, a kind, and ordered input wires.

    ``sop`` gates carry their :class:`~repro.logic.cubes.Cover` and read
    the *full signal vector* (their ``inputs`` list the support signals,
    for emitters); all other kinds read exactly their ``inputs``.
    """

    output: str
    kind: str
    inputs: Tuple[str, ...]
    cover: Optional[Cover] = None

    def __post_init__(self) -> None:
        if self.kind not in GATE_KINDS:
            raise ValueError(f"unknown gate kind {self.kind!r}")
        if self.kind == "sop" and self.cover is None:
            raise ValueError("sop gates need a cover")
        if self.kind in ("not", "buf") and len(self.inputs) != 1:
            raise ValueError(f"{self.kind} gates take exactly one input")
        if self.kind in ("and", "or") and not 1 <= len(self.inputs) <= 2:
            raise ValueError(f"{self.kind} gates take one or two inputs")

    def evaluate(self, values: Dict[str, int], code: Code) -> int:
        """Gate output under wire ``values``; ``code`` feeds sop gates."""
        if self.kind == "sop":
            return 1 if self.cover.contains_minterm(code) else 0
        ins = [values[name] for name in self.inputs]
        if self.kind == "and":
            return 1 if all(ins) else 0
        if self.kind == "or":
            return 1 if any(ins) else 0
        if self.kind == "not":
            return 1 - ins[0]
        return ins[0]  # buf


@dataclass
class GateNetwork:
    """A synthesized netlist for one controller.

    ``signals`` is the full SG signal order (the code layout), ``wires``
    the internal wire names in topological order (empty for complex-gate
    networks), ``gates`` maps every output signal and internal wire to its
    driver, and ``functions`` keeps the minimised next-state functions the
    gates implement.
    """

    name: str
    signals: List[str]
    inputs: List[str]
    outputs: List[str]
    wires: List[str] = field(default_factory=list)
    gates: Dict[str, Gate] = field(default_factory=dict)
    functions: Dict[str, NextStateFunction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [name for name in list(self.outputs) + list(self.wires) if name not in self.gates]
        if missing:
            raise ValueError(f"wires without drivers: {missing}")

    # -- evaluation ----------------------------------------------------

    def settle_wires(self, code: Code) -> Dict[str, int]:
        """Steady-state values of every wire given the signal ``code``.

        Internal wires are combinational over signals and earlier wires,
        so one pass in topological order settles them.
        """
        values: Dict[str, int] = {name: code[i] for i, name in enumerate(self.signals)}
        for wire in self.wires:
            values[wire] = self.gates[wire].evaluate(values, code)
        return values

    def target(self, signal: str, code: Code, values: Optional[Dict[str, int]] = None) -> int:
        """The value ``signal``'s driver gate outputs under ``code``."""
        if values is None:
            values = self.settle_wires(code)
        return self.gates[signal].evaluate(values, code)

    def next_values(self, code: Code) -> Dict[str, int]:
        """Next value of every output signal under ``code``."""
        values = self.settle_wires(code)
        return {signal: self.gates[signal].evaluate(values, code) for signal in self.outputs}

    def excited(self, code: Code) -> Dict[str, int]:
        """Output signals whose gate disagrees with the current code,
        mapped to the value they are heading to."""
        index = {name: i for i, name in enumerate(self.signals)}
        return {
            signal: value
            for signal, value in self.next_values(code).items()
            if value != code[index[signal]]
        }

    # -- statistics ----------------------------------------------------

    def literal_count(self) -> int:
        """Sum of cover literals over all output functions — the same
        area proxy :class:`~repro.logic.netlist.CircuitEstimate` reports."""
        return sum(fn.literal_count for fn in self.functions.values())

    def cube_count(self) -> int:
        return sum(fn.cube_count for fn in self.functions.values())

    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def is_decomposed(self) -> bool:
        return bool(self.wires)

    def summary(self) -> Dict[str, int]:
        return {
            "signals": len(self.outputs),
            "literals": self.literal_count(),
            "cubes": self.cube_count(),
            "gates": self.gate_count(),
            "wires": len(self.wires),
        }


def fresh_name(base: str, taken: Iterable[str]) -> str:
    """Deterministically uniquify ``base`` against ``taken``."""
    used = set(taken)
    name = base
    while name in used:
        name = name + "_"
    return name


def build_network(
    name: str,
    signals: Sequence[str],
    inputs: Sequence[str],
    functions: Dict[str, NextStateFunction],
) -> GateNetwork:
    """Complex-gate network: one sop gate per non-input signal."""
    outputs = [s for s in signals if s not in set(inputs)]
    gates: Dict[str, Gate] = {}
    for signal in outputs:
        fn = functions[signal]
        support = tuple(
            n
            for position, n in enumerate(signals)
            if any(cube.literal(position) != "-" for cube in fn.cover)
        )
        gates[signal] = Gate(output=signal, kind="sop", inputs=support, cover=fn.cover)
    return GateNetwork(
        name=name,
        signals=list(signals),
        inputs=list(inputs),
        outputs=outputs,
        wires=[],
        gates=gates,
        functions=dict(functions),
    )
