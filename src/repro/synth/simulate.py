"""Gate-level verification: play the netlist against the SG token game.

Two checks, both under the speed-independent firing rule (any excited
gate may fire after an arbitrary finite delay):

*Excitation equivalence* — walk every reachable SG state (the token game,
BFS from the initial state) and require that the set of output signals the
netlist wants to switch equals the set of non-input edges the state graph
enables.  Because the complex-gate netlist is a pure function of the code,
this equality at every reachable state is exactly mutual trace
reproducibility: every SG trace can be replayed by the netlist and every
netlist behaviour is a trace of the SG.

*Decomposition hazard check* — a decomposed netlist has internal wires
with their own delays, so function equality is no longer enough.  We
explore the product of SG states and internal wire configurations: from
each configuration any unstable internal gate may flip, any enabled input
edge may fire, and a non-input edge may fire once its (decomposed) driver
gate has actually switched.  The decomposition is accepted only if every
unstable gate stays unstable across any other single event
(semi-modularity — no transition can be disabled before it fires) and the
netlist never wants to switch an output the SG does not enable.  The
exploration is budgeted; exceeding the budget counts as a failure and
synthesis falls back to the complex-gate network.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.stg.state_graph import StateGraph
from repro.synth.network import GateNetwork

_MAX_RECORDED_MISMATCHES = 5


@dataclass
class VerificationReport:
    """Outcome of playing a netlist against the state graph."""

    ok: bool
    mode: str  # "complex" or "decomposed"
    states_checked: int = 0
    transitions_checked: int = 0
    configurations: int = 0
    budget_exceeded: bool = False
    mismatches: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "mode": self.mode,
            "states_checked": self.states_checked,
            "transitions_checked": self.transitions_checked,
            "configurations": self.configurations,
            "budget_exceeded": self.budget_exceeded,
            "mismatches": self.mismatches,
        }


def _check_excitation(network: GateNetwork, sg: StateGraph, report: VerificationReport) -> None:
    """BFS the token game; compare netlist vs SG excitation at each state."""
    frontier = deque([sg.initial_state])
    seen = {sg.initial_state}
    while frontier:
        state = frontier.popleft()
        report.states_checked += 1
        code = sg.code(state)
        net_excited = set(network.excited(code))
        sg_excited = {edge.signal for edge in sg.enabled_noninput_edges(state)}
        if net_excited != sg_excited:
            report.ok = False
            if len(report.mismatches) < _MAX_RECORDED_MISMATCHES:
                report.mismatches.append(
                    {
                        "check": "excitation",
                        "code": "".join(str(v) for v in code),
                        "netlist": sorted(net_excited),
                        "state_graph": sorted(sg_excited),
                    }
                )
        for edge in sg.enabled_edges(state):
            report.transitions_checked += 1
            successor = sg.ts.successor(state, edge)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)


def _wire_targets(network: GateNetwork, code: Tuple[int, ...], values: Dict[str, int]) -> Dict[str, int]:
    return {wire: network.gates[wire].evaluate(values, code) for wire in network.wires}


def _check_decomposition(
    network: GateNetwork, sg: StateGraph, report: VerificationReport, max_configs: int
) -> None:
    """Explore (SG state, internal wires) configurations for hazards."""
    wires = list(network.wires)
    initial_code = sg.code(sg.initial_state)
    initial_values = network.settle_wires(initial_code)
    initial_wires = tuple(initial_values[w] for w in wires)
    start = (sg.initial_state, initial_wires)
    frontier = deque([start])
    seen = {start}

    def record(check: str, code: Tuple[int, ...], detail: Dict[str, Any]) -> None:
        report.ok = False
        if len(report.mismatches) < _MAX_RECORDED_MISMATCHES:
            entry = {"check": check, "code": "".join(str(v) for v in code)}
            entry.update(detail)
            report.mismatches.append(entry)

    while frontier:
        if len(seen) > max_configs:
            report.ok = False
            report.budget_exceeded = True
            return
        state, wvals = frontier.popleft()
        report.configurations += 1
        code = sg.code(state)
        values = {name: code[i] for i, name in enumerate(network.signals)}
        values.update(zip(wires, wvals))
        targets = _wire_targets(network, code, values)
        unstable = [w for w in wires if targets[w] != values[w]]
        index = {name: i for i, name in enumerate(network.signals)}
        root = {a: network.gates[a].evaluate(values, code) for a in network.outputs}
        enabled = list(sg.enabled_edges(state))
        sg_excited = {edge.signal for edge in enabled if not sg.is_input_edge(edge)}

        # output correctness: the circuit may only switch what the SG enables
        for a in network.outputs:
            if root[a] != code[index[a]] and a not in sg_excited:
                record("output", code, {"signal": a, "wants": root[a]})
                return

        successors: List[Tuple[Any, Tuple[int, ...], str]] = []
        for w in unstable:
            flipped = tuple(
                1 - v if wires[i] == w else v for i, v in enumerate(wvals)
            )
            successors.append((state, flipped, w))
        for edge in enabled:
            if not sg.is_input_edge(edge) and root[edge.signal] != edge.value_after():
                continue  # driver gate has not switched yet
            successors.append((sg.ts.successor(state, edge), wvals, ""))

        for next_state, next_wvals, flipped_wire in successors:
            next_code = sg.code(next_state)
            next_values = {name: next_code[i] for i, name in enumerate(network.signals)}
            next_values.update(zip(wires, next_wvals))
            next_targets = _wire_targets(network, next_code, next_values)
            # semi-modularity: every other unstable gate must stay unstable
            for w in unstable:
                if w != flipped_wire and next_targets[w] == next_values[w]:
                    record("persistence", code, {"wire": w, "after": flipped_wire or "edge"})
                    return
            config = (next_state, next_wvals)
            if config not in seen:
                seen.add(config)
                frontier.append(config)


def verify_network(network: GateNetwork, sg: StateGraph, max_configs: int = 20000) -> VerificationReport:
    """Verify ``network`` implements ``sg`` under the SI firing rule.

    Always runs the excitation-equivalence token game; decomposed
    networks additionally get the budgeted hazard exploration.
    """
    mode = "decomposed" if network.is_decomposed else "complex"
    report = VerificationReport(ok=True, mode=mode)
    _check_excitation(network, sg, report)
    if report.ok and network.is_decomposed:
        _check_decomposition(network, sg, report, max_configs)
    return report
