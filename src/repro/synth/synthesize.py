"""Synthesis proper: encoded state graph -> verified gate network.

``synthesize`` is the one entry point of the tier.  It reuses the
``repro.logic`` machinery (code classification, espresso-style cover
minimisation, trigger-signal statistics) to build per-output complex
gates, optionally decomposes wide covers into 2-input gates, emits the
three netlist formats, and — unless told otherwise — plays the result
against the SG token game so the returned :class:`SynthResult` carries an
honest ``verified`` flag.

Observability: the phases show up as ``synth.extract`` /
``synth.minimize`` / ``synth.decompose`` / ``synth.verify`` spans, and
the ``pyetrify_synth_*`` metric family counts runs and verification
outcomes.  Like every obs surface in this codebase, none of it affects
results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.logic.netlist import CircuitEstimate, SignalImplementation, _support
from repro.logic.nextstate import classify_codes, function_from_codes
from repro.obs import REGISTRY, span
from repro.stg.state_graph import StateGraph
from repro.synth.decompose import decompose_network
from repro.synth.emit import emit_blif, emit_equations, emit_verilog
from repro.synth.network import GateNetwork, build_network
from repro.synth.simulate import VerificationReport, verify_network

_SYNTH_RUNS = REGISTRY.counter(
    "pyetrify_synth_runs_total",
    "Synthesis runs by outcome",
    labelnames=("status",),
)
_SYNTH_VERIFIED = REGISTRY.counter(
    "pyetrify_synth_verified_total",
    "Netlists that passed gate-level verification against the SG",
)
_SYNTH_LITERALS = REGISTRY.histogram(
    "pyetrify_synth_literals",
    "Literal count of synthesized netlists",
    buckets=(8, 16, 32, 64, 128, 256, 512),
)


@dataclass
class SynthResult:
    """Everything synthesis produced for one controller."""

    name: str
    network: GateNetwork
    estimate: CircuitEstimate
    equations: str
    verilog: str
    blif: str
    verified: bool = False
    verification: Optional[VerificationReport] = None
    decomposed: bool = False
    decomposition: Dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def literals(self) -> int:
        return self.network.literal_count()

    def summary(self) -> Dict[str, Any]:
        row = self.network.summary()
        row["name"] = self.name
        row["verified"] = self.verified
        row["decomposed"] = self.decomposed
        return row

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe view carried through batch items and service results."""
        return {
            "status": "ok",
            "name": self.name,
            "summary": self.network.summary(),
            "verified": self.verified,
            "verification": self.verification.as_dict() if self.verification else None,
            "decomposed": self.decomposed,
            "decomposition": self.decomposition,
            "equations": self.equations,
            "verilog": self.verilog,
            "blif": self.blif,
        }


def synthesize(
    sg: StateGraph,
    name: str = "",
    decompose: bool = False,
    verify: bool = True,
    max_configs: int = 20000,
) -> SynthResult:
    """Synthesize, optionally decompose, and verify a netlist for ``sg``.

    ``sg`` must satisfy CSC (propagates
    :class:`~repro.logic.nextstate.CSCViolationError` otherwise).  With
    ``decompose=True`` wide complex gates are rewritten into 2-input
    gates; if the budgeted hazard check rejects the decomposition the
    complex-gate network is returned instead, with the reason recorded in
    ``decomposition``.
    """
    started = time.perf_counter()
    name = name or sg.name
    try:
        with span("synth.extract", name=name):
            codes = {signal: classify_codes(sg, signal) for signal in sg.non_input_signals}
        with span("synth.minimize", name=name):
            functions = {
                signal: function_from_codes(sg, signal, on, off) for signal, (on, off) in codes.items()
            }
            implementations = {
                signal: SignalImplementation(
                    signal=signal,
                    function=fn,
                    trigger_signals=_trigger_set(sg, signal),
                    support=_support(fn),
                )
                for signal, fn in functions.items()
            }
            estimate = CircuitEstimate(name=name, implementations=implementations)
    except Exception:
        _SYNTH_RUNS.labels(status="error").inc()
        raise

    network = build_network(name, sg.signals, sg.input_signals, functions)
    decomposed = False
    decomposition: Dict[str, Any] = {}
    candidate = network
    if decompose:
        with span("synth.decompose", name=name):
            candidate, info = decompose_network(network)
            decomposition = dict(info)
            decomposed = candidate.is_decomposed

    verification: Optional[VerificationReport] = None
    verified = False
    if verify:
        with span("synth.verify", name=name, mode="decomposed" if decomposed else "complex"):
            verification = verify_network(candidate, sg, max_configs=max_configs)
            if decomposed and not verification.ok:
                # hazard or budget: fall back to the complex-gate network
                decomposition["fallback"] = (
                    "budget_exceeded" if verification.budget_exceeded else "hazard"
                )
                decomposition["rejected"] = verification.as_dict()["mismatches"]
                candidate = network
                decomposed = False
                verification = verify_network(network, sg, max_configs=max_configs)
            verified = verification.ok

    result = SynthResult(
        name=name,
        network=candidate,
        estimate=estimate,
        equations=emit_equations(candidate),
        verilog=emit_verilog(candidate),
        blif=emit_blif(candidate),
        verified=verified,
        verification=verification,
        decomposed=decomposed,
        decomposition=decomposition,
        seconds=time.perf_counter() - started,
    )
    _SYNTH_RUNS.labels(status="ok" if (verified or not verify) else "unverified").inc()
    if verified:
        _SYNTH_VERIFIED.inc()
    _SYNTH_LITERALS.observe(float(result.literals))
    return result


def _trigger_set(sg: StateGraph, signal: str) -> set:
    """Distinct trigger signals of ``signal`` (paper Section 5 figure)."""
    from repro.core.excitation import excitation_regions, trigger_events
    from repro.stg.signals import SignalEdge

    triggers: set = set()
    for edge in (SignalEdge.rise(signal), SignalEdge.fall(signal)):
        if edge not in sg.ts.events:
            continue
        for region in excitation_regions(sg.ts, edge):
            for event in trigger_events(sg.ts, region):
                if isinstance(event, SignalEdge):
                    triggers.add(event.signal)
    return triggers
