"""Encode a family of handshake controllers and compare against the baseline.

This is the Table-2 workflow in miniature: for a handful of controllers
(sequencers and mixed concurrent/sequential controllers, the structural
stand-ins for the paper's industrial benchmarks) run both the region-based
encoder and the excitation-region-restricted (ASSASSIN-style) baseline,
and print area / CPU / inserted-signal counts side by side.

Run with:  python examples/handshake_controller_suite.py
"""

from repro.baselines.assassin import assassin_settings
from repro.bench_stg import generators as gen
from repro.bench_stg.library import get_case
from repro.core import solve_csc
from repro.logic import estimate_circuit
from repro.stg import build_state_graph
from repro.utils.timing import Stopwatch

CONTROLLERS = {
    "vme2int": gen.vme_controller,
    "sbuf-read-ctl": lambda: gen.sequencer(3),
    "nak-pa": lambda: gen.mixed_controller(1, 2),
    "mmu1": lambda: gen.mixed_controller(2, 1),
    "seqmix": lambda: gen.mixed_controller(0, 4),
}


def run_one(name: str) -> dict:
    case = get_case(name)
    sg = build_state_graph(CONTROLLERS[name]())
    row = {"benchmark": name, "states": sg.num_states}

    for label, settings in (
        ("regions", case.solver_settings()),
        ("assassin", assassin_settings(case.solver_settings())),
    ):
        watch = Stopwatch().start()
        result = solve_csc(sg, settings)
        watch.stop()
        area = estimate_circuit(result.final_sg).total_literals if result.solved else "-"
        row[f"{label}_area"] = area
        row[f"{label}_signals"] = result.num_inserted
        row[f"{label}_cpu"] = round(watch.elapsed, 2)
    return row


def main() -> None:
    rows = [run_one(name) for name in CONTROLLERS]
    columns = list(rows[0].keys())
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns}
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    print(
        "\nBoth encoders share the cost model and SIP checks; the only "
        "difference is the granularity of the insertion material "
        "(regions and their intersections vs excitation regions only)."
    )


if __name__ == "__main__":
    main()
