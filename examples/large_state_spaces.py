"""Scaling study: explicit vs symbolic exploration of concurrent STGs.

The paper's Table 1 highlights petrify's ability to handle STGs whose
state graphs are far too large to enumerate naively, thanks to symbolic
(BDD) representation and region-level exploration.  This script sweeps the
scalable ``par(n)`` family: explicit reachability while it stays cheap,
BDD-based counting beyond that, and CSC solving on the sizes where the
pure-Python solver is practical.

Run with:  python examples/large_state_spaces.py
"""

import time

from repro.bdd import symbolic_state_count
from repro.bench_stg import generators as gen
from repro.core import SearchSettings, SolverSettings, solve_csc
from repro.petri import build_reachability_graph
from repro.stg import build_state_graph

EXPLICIT_MAX = 8
SOLVE_MAX = 4


def main() -> None:
    print(f"{'n':>3} {'states':>12} {'engine':>10} {'count_s':>8} {'solve_s':>8} {'inserted':>8}")
    for branches in (2, 3, 4, 6, 8, 12, 16):
        stg = gen.parallel_toggles(branches)
        start = time.perf_counter()
        if branches <= EXPLICIT_MAX:
            states = build_reachability_graph(stg.net).num_markings
            engine = "explicit"
        else:
            states = symbolic_state_count(stg.net)
            engine = "BDD"
        count_seconds = time.perf_counter() - start

        solve_seconds = ""
        inserted = ""
        if branches <= SOLVE_MAX:
            sg = build_state_graph(stg)
            settings = SolverSettings(search=SearchSettings(allow_input_delay=True))
            start = time.perf_counter()
            result = solve_csc(sg, settings)
            solve_seconds = f"{time.perf_counter() - start:.2f}"
            inserted = str(result.num_inserted)
        print(
            f"{branches:>3} {states:>12} {engine:>10} {count_seconds:>8.2f} "
            f"{solve_seconds:>8} {inserted:>8}"
        )

    print(
        "\nThe BDD engine keeps counting exactly where explicit enumeration "
        "stops being practical — the same division of labour Table 1 relies on."
    )


if __name__ == "__main__":
    main()
