"""Region-based Petri-net synthesis: the Figure-1 round trip.

The encoded specification is handed back to the designer as an STG, not a
flat state graph.  The machinery behind that is region-based Petri-net
synthesis: every minimal region becomes a candidate place, excitation
closure decides which are needed, and the reachability graph of the
resulting net is isomorphic to the original transition system.

This script runs the round trip twice:

1. on the small concurrent transition system of the paper's Figure 1;
2. on the encoded VME controller, writing the final STG as ``.g`` text.

Run with:  python examples/synthesize_petri_net.py
"""

from repro import encode_stg
from repro.bench_stg import generators as gen
from repro.petri.synthesis import reachability_isomorphic_to, synthesize_net
from repro.stg import stg_to_g_text
from repro.ts import TransitionSystem


def figure1_roundtrip() -> None:
    ts = TransitionSystem.from_triples(
        [
            ("s1", "a", "s2"),
            ("s1", "b", "s3"),
            ("s2", "b", "s4"),
            ("s3", "a", "s4"),
            ("s4", "c", "s5"),
            ("s5", "a", "s6"),
            ("s5", "b", "s7"),
            ("s6", "b", "s8"),
            ("s7", "a", "s8"),
        ],
        initial="s1",
        name="fig1",
    )
    result = synthesize_net(ts)
    print(f"Figure 1 TS: {ts.num_states} states, {ts.num_events} events")
    print(
        f"Synthesised net: {result.num_places} places, "
        f"{result.num_transitions} transitions"
    )
    for place, region in result.place_regions.items():
        print(f"  {place} <- region {sorted(map(str, region))}")
    print(f"Reachability graph isomorphic to the TS: {reachability_isomorphic_to(ts, result)}")


def encoded_vme_as_stg() -> None:
    report = encode_stg(gen.vme_controller(), resynthesize=True)
    print("\nVME controller after CSC solving, as an STG the designer can edit:")
    print(stg_to_g_text(report.encoded_stg))


def main() -> None:
    figure1_roundtrip()
    encoded_vme_as_stg()


if __name__ == "__main__":
    main()
