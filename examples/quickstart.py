"""Quickstart: solve Complete State Coding for the VME bus controller.

The VME bus controller (read cycle) is the textbook example of a
specification whose state graph violates CSC: two reachable states share
the same signal values but require different circuit behaviour.  This
script parses the controller from ``.g`` text, shows the conflict, lets
the region-based encoder insert a state signal and prints the resulting
logic.

Run with:  python examples/quickstart.py
"""

from repro import encode_stg, parse_g

VME_G = """
.model vme
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
ldtack- lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack- lds-
dtack- dsr+
lds- ldtack-
.marking { <dtack-,dsr+> <ldtack-,lds+> }
.end
"""


def main() -> None:
    stg = parse_g(VME_G)
    print(f"Parsed {stg.name}: {stg.stats()}")

    report = encode_stg(stg, resynthesize=True)

    sg = report.state_graph
    print(f"\nState graph: {sg.num_states} states over signals {sg.signals}")

    from repro.core import csc_conflicts

    for conflict in csc_conflicts(sg):
        print(
            f"CSC conflict: code {conflict.code} is shared by two states "
            f"({sg.code_str(conflict.first)} vs {sg.code_str(conflict.second)})"
        )

    print(f"\nSolved: {report.solved}")
    print(f"Inserted state signals: {report.inserted_signals}")
    print(f"Encoded state graph: {report.result.final_sg.num_states} states")
    print(f"Estimated area: {report.area_literals} literals")

    print("\nNext-state functions of the encoded circuit:")
    for signal, implementation in report.circuit.implementations.items():
        print(f"  [{signal}] = {implementation.expression()}")

    if report.encoded_stg is not None:
        from repro.stg import stg_to_g_text

        print("\nRe-synthesised STG (.g):")
        print(stg_to_g_text(report.encoded_stg))


if __name__ == "__main__":
    main()
