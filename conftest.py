"""Repository-level pytest configuration.

Defines the ``--repro-seed`` option shared by the test suite and the
benchmark harnesses (each seeds its RNGs from it in its own
``conftest.py``), so a run is reproducible across the CI matrix: the
same seed on every runner and Python version yields the same examples
and therefore the same outcomes.
"""

from __future__ import annotations

DEFAULT_REPRO_SEED = 19960610  # DAC'96 session date; any fixed value works.


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        type=int,
        default=DEFAULT_REPRO_SEED,
        help="fixed RNG seed applied to random/hypothesis for deterministic runs",
    )
